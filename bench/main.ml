(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5) in Quick mode, then runs Bechamel
   microbenchmarks of the implementation's hot paths.

   Usage:  dune exec bench/main.exe [-- --full] [-- --only fig5,table2]
     --full          longer measurement windows, denser sweeps
     --only LIST     comma-separated experiment ids
     --skip-micro    skip the Bechamel microbenchmarks
     --jobs N        fan sweep points across N domains (default: all cores)
     --serial        one domain (same tables: results are order-merged)
     --json PATH     also write machine-readable results, e.g.
                     --json BENCH_$(date +%%F).json *)

open Reflex_experiments

let mode = ref Common.Quick
let only : string list ref = ref []
let skip_micro = ref false
let jobs = ref (Runner.recommended_jobs ())
let json_path : string option ref = ref None

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
      mode := Common.Full;
      go rest
    | "--only" :: spec :: rest ->
      only := String.split_on_char ',' spec;
      go rest
    | "--skip-micro" :: rest ->
      skip_micro := true;
      go rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> jobs := n
      | _ -> failwith "--jobs expects a positive integer");
      go rest
    | "--serial" :: rest ->
      jobs := 1;
      go rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      go rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv))

let enabled id = !only = [] || List.mem id !only

(* (id, wall seconds) per experiment and (name, ns/op) per micro, for
   --json: a perf trajectory future changes can be compared against. *)
let exp_times : (string * float) list ref = ref []
let micro_results : (string * float) list ref = ref []

let timed id f =
  if enabled id then begin
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    exp_times := (id, dt) :: !exp_times;
    Printf.printf "[%s finished in %.1fs]\n\n%!" id dt
  end

let experiments =
  [
    ( "fig1",
      fun mode -> Reflex_stats.Table.print (Fig1.to_table (Fig1.run ~mode ())) );
    ( "fig3",
      fun mode -> List.iter Reflex_stats.Table.print (Fig3.to_tables (Fig3.run ~mode ())) );
    ( "table2",
      fun mode -> Reflex_stats.Table.print (Table2.to_table (Table2.run ~mode ())) );
    ("fig4", fun mode -> Reflex_stats.Table.print (Fig4.to_table (Fig4.run ~mode ())));
    ("fig5", fun mode -> Reflex_stats.Table.print (Fig5.to_table (Fig5.run ~mode ())));
    ( "fig6a",
      fun mode -> Reflex_stats.Table.print (Fig6.cores_table (Fig6.run_cores ~mode ())) );
    ( "fig6b",
      fun mode -> Reflex_stats.Table.print (Fig6.tenants_table (Fig6.run_tenants ~mode ())) );
    ( "fig6c",
      fun mode -> Reflex_stats.Table.print (Fig6.conns_table (Fig6.run_conns ~mode ())) );
    ("fig7a", fun mode -> Reflex_stats.Table.print (Fig7.fio_table (Fig7.run_fio ~mode ())));
    ( "fig7b",
      fun mode -> Reflex_stats.Table.print (Fig7.flashx_table (Fig7.run_flashx ~mode ())) );
    ( "fig7c",
      fun mode -> Reflex_stats.Table.print (Fig7.rocksdb_table (Fig7.run_rocksdb ~mode ())) );
    ( "ablations",
      fun mode ->
        Reflex_stats.Table.print (Ablations.neg_limit_table (Ablations.run_neg_limit ~mode ()));
        Reflex_stats.Table.print (Ablations.donation_table (Ablations.run_donation ~mode ()));
        Reflex_stats.Table.print (Ablations.batching_table (Ablations.run_batching ~mode ()));
        Reflex_stats.Table.print (Ablations.cost_model_table (Ablations.run_cost_model ~mode ()))
    );
  ]

(* ---------------- Telemetry overhead ---------------- *)

(* Wall time of a fixed single-tenant sweep with the observability layer
   disabled vs enabled.  The disabled path must be free (the record
   sites are compiled in, guarded by one immutable bool), so this pins
   the enabled cost and double-checks the simulated results are
   bit-identical either way. *)
let telemetry_overhead_results : (float * float * float) option ref = ref None

let telemetry_overhead () =
  let open Reflex_engine in
  let open Reflex_client in
  let open Reflex_telemetry in
  let point ~telemetry rate =
    let telemetry = if telemetry then Telemetry.create () else Telemetry.disabled in
    let w = Common.make_reflex ~telemetry () in
    let sim = w.Common.sim in
    let client = Common.client_of w ~tenant:1 () in
    let until = Time.add (Sim.now sim) (Time.ms 60) in
    let gen =
      Load_gen.open_loop sim ~client ~rate ~read_ratio:1.0 ~bytes:4096 ~until ~seed:3L ()
    in
    Common.measure_generators sim [ gen ] ~warmup:(Time.ms 10) ~window:(Time.ms 40);
    Load_gen.achieved_iops gen
  in
  let rates = [ 40e3; 80e3; 120e3; 160e3 ] in
  let reps = 3 in
  let run ~telemetry =
    let t0 = Unix.gettimeofday () in
    let r = ref [] in
    for _ = 1 to reps do
      r := List.map (point ~telemetry) rates
    done;
    (Unix.gettimeofday () -. t0, !r)
  in
  let off_s, off_iops = run ~telemetry:false in
  let on_s, on_iops = run ~telemetry:true in
  if not (List.for_all2 Float.equal off_iops on_iops) then
    print_endline "WARNING: telemetry perturbed simulated IOPS";
  let overhead_pct = if off_s > 0.0 then (on_s -. off_s) /. off_s *. 100.0 else 0.0 in
  telemetry_overhead_results := Some (off_s, on_s, overhead_pct);
  Printf.printf "== telemetry overhead ==\noff %.2fs / on %.2fs (%dx%d points): %+.1f%%\n\n%!"
    off_s on_s reps (List.length rates) overhead_pct

(* ---------------- Raw event-loop speed ---------------- *)

(* Simulated-events/sec of a pure event-churn workload on each queue
   backend: [chains] self-rescheduling events with per-chain prng
   strides, every fourth hop arming a decoy timer that the next hop
   cancels — the schedule/cancel/pop mix of a dataplane at load with no
   flash or network model in the way.  Alongside wall time we report
   minor-GC words per event: the zero-alloc discipline of the heap,
   wheel and event arena shows up as a small constant that does not
   scale with event count.  Both backends must retire the same events
   and finish at the same virtual time. *)

let speed_results : (string * int * float * float) list ref = ref []
(* (backend, events, events/sec, minor words per event) *)

let speed_leg () =
  let open Reflex_engine in
  let chains = 64 in
  let hops = match !mode with Common.Full -> 20_000 | Common.Quick -> 4_000 in
  let run_one name backend =
    let sim = Sim.create ~backend () in
    for c = 0 to chains - 1 do
      let prng = Prng.create (Int64.of_int ((c * 7919) + 17)) in
      let remaining = ref hops in
      let decoy = ref None in
      let rec hop () =
        (match !decoy with
        | Some id ->
          Sim.cancel sim id;
          decoy := None
        | None -> ());
        if !remaining > 0 then begin
          decr remaining;
          let stride = 1 + Prng.int prng 65536 in
          ignore (Sim.after sim (Time.ns stride) hop);
          if !remaining land 3 = 0 then
            decoy := Some (Sim.after sim (Time.us 500) (fun () -> decoy := None))
        end
      in
      ignore (Sim.at sim (Time.ns (c + 1)) hop)
    done;
    Gc.full_major ();
    let mw0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let n = Sim.run sim in
    let wall = Unix.gettimeofday () -. t0 in
    let mw = Gc.minor_words () -. mw0 in
    let eps = if wall > 0.0 then float_of_int n /. wall else 0.0 in
    let mwpe = if n > 0 then mw /. float_of_int n else 0.0 in
    speed_results := (name, n, eps, mwpe) :: !speed_results;
    Printf.printf "%-6s %9d events  %12.0f events/s  %6.2f minor words/event\n%!" name n eps
      mwpe;
    (n, Sim.now sim)
  in
  Printf.printf "== event-loop speed (%d chains x %d hops) ==\n" chains hops;
  let dh = run_one "heap" Sim.Heap in
  let dw = run_one "wheel" Sim.Wheel in
  if dh <> dw then print_endline "WARNING: heap and wheel diverged (events, final time)";
  print_newline ()

(* ---------------- Continuous cost profiler ---------------- *)

(* Two views of where the simulator's own host cost goes:

   1. Per-subsystem shares: the full observability scenario (lib/experiments
      Obs_exp — LC/BE tenants, retries, faults, monitor) run once with the
      lib/obs cost profiler armed, attributing wall time and minor-heap
      words to engine/qos/flash/net/telemetry/monitor scopes.

   2. Scheduler-tick cost curve: a standalone token scheduler with N LC
      tenants, measuring host nanoseconds per schedule round as N grows —
      the per-tick cost the ROADMAP's 100K-tenant item needs to stay flat
      per tenant.

   Both are nondeterministic host measurements (see profiler.mli); they are
   reported here and in the --json "profile" section only. *)

let profile_shares : (string * float * float * float) list ref = ref []
let tick_curve : (int * float * float) list ref = ref []
(* (tenants, ns per round, ns per round per tenant) *)

let profile_leg () =
  let open Reflex_engine in
  let open Reflex_qos in
  let module Profiler = Reflex_obs.Profiler in
  let r = Obs_exp.run ~mode:!mode ~profile:true () in
  profile_shares := Profiler.shares r.Obs_exp.profiler;
  Printf.printf "== cost profiler: observability scenario ==\n%s\n%!"
    (Profiler.report r.Obs_exp.profiler);
  let counts =
    match !mode with
    | Common.Full -> [ 16; 64; 256; 1024; 4096 ]
    | Common.Quick -> [ 16; 64; 256; 1024 ]
  in
  let rounds = match !mode with Common.Full -> 2_000 | Common.Quick -> 500 in
  Printf.printf "== scheduler-tick cost vs tenant count (%d rounds each) ==\n" rounds;
  List.iter
    (fun n ->
      let global = Global_bucket.create ~n_threads:1 in
      let sched = Scheduler.create ~global ~thread_id:0 () in
      for i = 1 to n do
        Scheduler.add_tenant sched
          (Tenant.create ~id:i
             ~slo:(Slo.latency_critical ~latency_us:500 ~iops:1000.0 ~read_pct:100)
             ~token_rate:1e6)
      done;
      for i = 1 to n do
        Scheduler.enqueue sched ~tenant_id:i ~cost:1.0 ()
      done;
      (* Round 0 drains the queued work; the timed rounds then measure the
         steady-state per-tick walk (refill + decision per tenant). *)
      ignore (Scheduler.schedule sched ~now:(Time.us 100) ~submit:(fun _ -> ()));
      let t0 = Unix.gettimeofday () in
      for k = 1 to rounds do
        ignore (Scheduler.schedule sched ~now:(Time.us (100 + (100 * k))) ~submit:(fun _ -> ()))
      done;
      let wall = Unix.gettimeofday () -. t0 in
      let ns_round = wall /. float_of_int rounds *. 1e9 in
      let ns_tenant = ns_round /. float_of_int n in
      tick_curve := (n, ns_round, ns_tenant) :: !tick_curve;
      Printf.printf "%6d tenants  %12.0f ns/round  %8.1f ns/round/tenant\n%!" n ns_round
        ns_tenant)
    counts;
  print_newline ()

(* ---------------- Rack balancing throughput ---------------- *)

(* Wall-clock requests/sec through the rack's request-level balancer,
   one small fixed world per policy (8 servers, 64 tenants with 3-way
   replica sets, periodic probe refresh): this prices the pick +
   ingress-charge + dispatch path itself, not the scenario around it.
   A skew-driven migration micro rides along so the JSON records that
   online migration stays live. *)

let rack_results : (string * int * float) list ref = ref []
(* (policy, balanced requests, wall requests/sec) *)

let rack_migration_count = ref 0

let rack_leg () =
  let open Reflex_engine in
  let open Reflex_rack in
  let n_servers = 8 and n_tenants = 64 in
  let window = match !mode with Common.Full -> Time.ms 40 | Common.Quick -> Time.ms 10 in
  Printf.printf "== rack request-level balancing (%d servers, %d tenants, 3 replicas) ==\n"
    n_servers n_tenants;
  List.iter
    (fun kind ->
      let sim = Sim.create ~seed:7L () in
      let rack = Rack.create sim ~n_servers ~policy:kind ~seed:0xBE11L () in
      let slo = Common.lc_slo ~latency_us:300 ~iops:2000 ~read_pct:100 in
      for id = 1 to n_tenants do
        ignore (Rack.add_tenant rack ~id ~slo ~replicas:3)
      done;
      let t0 = Sim.now sim in
      let t_end = Time.add t0 window in
      Sim.every sim ~every:(Time.us 250) ~until:t_end (fun _ -> Rack.sample_probes rack);
      for id = 1 to n_tenants do
        let prng = Prng.create (Int64.of_int ((id * 7919) + 3)) in
        let phase = Time.of_float_us (Prng.float prng *. 500.0) in
        ignore
          (Sim.at sim (Time.add t0 phase) (fun () ->
               Sim.every sim ~every:(Time.of_float_us 500.0) ~until:t_end (fun _ ->
                   Rack.dispatch_read rack ~tenant:id
                     ~lba:(Int64.of_int (Prng.int prng 65536 * 8))
                     ~len:1024 ())))
      done;
      let w0 = Unix.gettimeofday () in
      ignore (Sim.run sim);
      let wall = Unix.gettimeofday () -. w0 in
      let n = Rack.lc_dispatched rack in
      let rps = if wall > 0.0 then float_of_int n /. wall else 0.0 in
      rack_results := (Policy.kind_name kind, n, rps) :: !rack_results;
      Printf.printf "%-12s %8d balanced requests  %12.0f requests/s (wall)\n%!"
        (Policy.kind_name kind) n rps)
    Policy.all;
  (* Migration micro: everything pinned on server 0, detector armed on
     the probe tick — count migrations actually applied. *)
  let sim = Sim.create ~seed:9L () in
  let rack = Rack.create sim ~n_servers ~policy:Policy.Po2c ~seed:0x3160L () in
  let slo = Common.lc_slo ~latency_us:300 ~iops:2000 ~read_pct:100 in
  for id = 1 to 24 do
    ignore (Rack.add_tenant_on rack ~id ~slo ~server:0)
  done;
  let t0 = Sim.now sim in
  let t_end = Time.add t0 window in
  let sk = Skew.create ~cooldown:(Time.us 500) () in
  Sim.every sim ~every:(Time.us 250) ~until:t_end (fun now ->
      Rack.sample_probes rack;
      match Skew.observe sk ~now ~depths:(Rack.sampled_depths rack) with
      | None -> ()
      | Some hot -> (
        match Rack.hottest_tenant_on rack ~server:hot with
        | None -> ()
        | Some victim -> ignore (Rack.rebalance rack ~tenant:victim)));
  for id = 1 to 24 do
    let prng = Prng.create (Int64.of_int ((id * 104729) + 11)) in
    let phase = Time.of_float_us (Prng.float prng *. 500.0) in
    ignore
      (Sim.at sim (Time.add t0 phase) (fun () ->
           Sim.every sim ~every:(Time.of_float_us 500.0) ~until:t_end (fun _ ->
               Rack.dispatch_read rack ~tenant:id
                 ~lba:(Int64.of_int (Prng.int prng 65536 * 8))
                 ~len:1024 ())))
  done;
  ignore (Sim.run sim);
  rack_migration_count := Rack.migrations rack;
  Printf.printf "migration micro: %d skew firings, %d migrations applied\n\n%!" (Skew.fires sk)
    !rack_migration_count

(* ---------------- Rack tracing overhead ---------------- *)

(* Armed-vs-inert requests/sec on the po2c rack world above, paired
   back-to-back so machine-load swings hit both sides of the ratio, plus
   the bulk ns cost of the flight-ring write each hop stamp performs.
   This prices the always-on distributed tracer the way the bench-smoke
   gate does, but records the numbers for trend tracking. *)

let rack_obs_results : (float * float * float * int) list ref = ref []
(* (inert requests/sec, armed requests/sec, ns/hop-record, traced) — one entry *)

let rack_obs_leg () =
  let open Reflex_engine in
  let open Reflex_rack in
  let n_servers = 8 and n_tenants = 64 in
  let window = match !mode with Common.Full -> Time.ms 40 | Common.Quick -> Time.ms 10 in
  Printf.printf "== rack distributed tracing (po2c world, armed vs inert) ==\n";
  let run ~armed =
    let sim = Sim.create ~seed:7L () in
    let rack = Rack.create sim ~n_servers ~policy:Policy.Po2c ~seed:0xBE11L () in
    let obs = if armed then Some (Reflex_rack_obs.Rack_obs.create rack) else None in
    let slo = Common.lc_slo ~latency_us:300 ~iops:2000 ~read_pct:100 in
    for id = 1 to n_tenants do
      ignore (Rack.add_tenant rack ~id ~slo ~replicas:3)
    done;
    let t0 = Sim.now sim in
    let t_end = Time.add t0 window in
    Sim.every sim ~every:(Time.us 250) ~until:t_end (fun _ -> Rack.sample_probes rack);
    for id = 1 to n_tenants do
      let prng = Prng.create (Int64.of_int ((id * 7919) + 3)) in
      let phase = Time.of_float_us (Prng.float prng *. 500.0) in
      ignore
        (Sim.at sim (Time.add t0 phase) (fun () ->
             Sim.every sim ~every:(Time.of_float_us 500.0) ~until:t_end (fun _ ->
                 Rack.dispatch_read rack ~tenant:id
                   ~lba:(Int64.of_int (Prng.int prng 65536 * 8))
                   ~len:1024 ())))
    done;
    let w0 = Unix.gettimeofday () in
    ignore (Sim.run sim);
    let wall = Unix.gettimeofday () -. w0 in
    let n = Rack.lc_dispatched rack in
    let rps = if wall > 0.0 then float_of_int n /. wall else 0.0 in
    (rps, obs)
  in
  let best_i = ref 0.0 and best_a = ref 0.0 and best_ratio = ref infinity in
  let last_obs = ref None in
  for _ = 1 to 3 do
    let i, _ = run ~armed:false in
    let a, obs = run ~armed:true in
    last_obs := obs;
    if i > 0.0 && a /. i < !best_ratio then begin
      best_ratio := a /. i;
      best_i := i;
      best_a := a
    end
  done;
  let obs = match !last_obs with Some o -> o | None -> assert false in
  let bulk = 2_000_000 in
  let w0 = Unix.gettimeofday () in
  Reflex_rack_obs.Rack_obs.bench_hop_records obs bulk;
  let ns = (Unix.gettimeofday () -. w0) /. float_of_int bulk *. 1e9 in
  let traced = Reflex_rack_obs.Rack_obs.traced obs in
  rack_obs_results := [ (!best_i, !best_a, ns, traced) ];
  Printf.printf
    "inert %12.0f requests/s   armed %12.0f requests/s   %+.1f%% overhead\n%.0f ns/hop-record, %d traced, tiling exact: %b\n\n%!"
    !best_i !best_a
    ((!best_i -. !best_a) /. !best_i *. 100.0)
    ns traced
    (Reflex_rack_obs.Rack_obs.tiling_ok obs)

(* ---------------- Bechamel microbenchmarks ---------------- *)

let micro_benchmarks () =
  let open Bechamel in
  let open Reflex_engine in
  let open Reflex_qos in
  (* Scheduler round: 8 LC + 8 BE tenants with queued work. *)
  let sched_round =
    Test.make ~name:"qos_scheduler_round"
      (Staged.stage (fun () ->
           let global = Global_bucket.create ~n_threads:1 in
           let sched = Scheduler.create ~global ~thread_id:0 () in
           for i = 1 to 8 do
             Scheduler.add_tenant sched
               (Tenant.create ~id:i
                  ~slo:(Slo.latency_critical ~latency_us:500 ~iops:1000.0 ~read_pct:100)
                  ~token_rate:1e6)
           done;
           for i = 9 to 16 do
             Scheduler.add_tenant sched
               (Tenant.create ~id:i ~slo:(Slo.best_effort ()) ~token_rate:1e5)
           done;
           for i = 1 to 16 do
             for _ = 1 to 4 do
               Scheduler.enqueue sched ~tenant_id:i ~cost:1.0 ()
             done
           done;
           ignore (Scheduler.schedule sched ~now:(Time.us 100) ~submit:(fun _ -> ()))))
  in
  let codec_roundtrip =
    let msg =
      Reflex_proto.Message.Read_req { handle = 7; req_id = 42L; lba = 123L; len = 4096 }
    in
    let buf = Bytes.create 64 in
    Test.make ~name:"proto_codec_roundtrip"
      (Staged.stage (fun () ->
           ignore (Reflex_proto.Codec.encode_into msg buf 0);
           ignore (Reflex_proto.Codec.decode buf 0)))
  in
  let hist_record =
    let h = Reflex_stats.Hdr_histogram.create () in
    Test.make ~name:"hdr_histogram_record"
      (Staged.stage (fun () -> Reflex_stats.Hdr_histogram.record h 123_456L))
  in
  let flash_io =
    Test.make ~name:"flash_model_4k_read"
      (Staged.stage
         (let sim = Sim.create () in
          let dev =
            Reflex_flash.Nvme_model.create sim
              ~profile:Reflex_flash.Device_profile.device_a
              ~prng:(Prng.create 1L)
          in
          fun () ->
            Reflex_flash.Nvme_model.submit dev ~kind:Reflex_flash.Io_op.Read ~bytes:4096
              (fun ~latency:_ -> ());
            ignore (Sim.run sim)))
  in
  let heap_churn =
    Test.make ~name:"sim_event_schedule_run"
      (Staged.stage (fun () ->
           let sim = Sim.create ~backend:Sim.Heap () in
           for i = 1 to 64 do
             ignore (Sim.at sim (Time.us i) (fun () -> ()))
           done;
           ignore (Sim.run sim)))
  in
  let wheel_churn =
    Test.make ~name:"sim_event_schedule_run_wheel"
      (Staged.stage (fun () ->
           let sim = Sim.create ~backend:Sim.Wheel () in
           for i = 1 to 64 do
             ignore (Sim.at sim (Time.us i) (fun () -> ()))
           done;
           ignore (Sim.run sim)))
  in
  (* Raw queue datapath, no Sim wrapper: 256 scattered pushes then a
     full drain, on each backend. *)
  let heap_queue =
    let q = Heap.create () in
    Test.make ~name:"engine_heap_push_pop"
      (Staged.stage (fun () ->
           for i = 0 to 255 do
             Heap.push q ~time:(Time.us (((i * 37) land 255) + 1)) ~seq:i i
           done;
           let rec drain () = match Heap.pop q with Some _ -> drain () | None -> () in
           drain ()))
  in
  let wheel_queue =
    let q = Wheel.create () in
    (* The cursor only moves forward, so each iteration pushes into a
       fresh 256us window past the last drain — keeping the measurement
       on the in-wheel slot path rather than the below-cursor fallback. *)
    let base = ref 1 in
    Test.make ~name:"engine_wheel_push_pop"
      (Staged.stage (fun () ->
           let b = !base in
           for i = 0 to 255 do
             Wheel.push q ~time:(Time.us (b + ((i * 37) land 255))) ~seq:i i
           done;
           base := b + 257;
           let rec drain () = match Wheel.pop q with Some _ -> drain () | None -> () in
           drain ()))
  in
  let tests =
    [
      sched_round; codec_roundtrip; hist_record; flash_io; heap_churn; wheel_churn;
      heap_queue; wheel_queue;
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.25) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance
        raw
    in
    results
  in
  Printf.printf "== Bechamel microbenchmarks (ns/op) ==\n";
  List.iter
    (fun test ->
      let results = benchmark test in
      (* Name-sorted rows: bechamel hands back a Hashtbl, and the printed
         table must not depend on its layout. *)
      let rows =
        Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, result) ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some (t :: _) ->
            micro_results := (name, t) :: !micro_results;
            Printf.printf "%-28s %12.1f\n" name t
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        rows)
    tests;
  print_newline ()

(* ---------------- JSON results ---------------- *)

let write_json path =
  let oc = open_out path in
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"date\": \"%04d-%02d-%02d\",\n" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday;
  Printf.fprintf oc "  \"git_sha\": \"%s\",\n" (Common.git_sha ());
  Printf.fprintf oc "  \"seed\": %Ld,\n" Reflex_engine.Sim.default_seed;
  Printf.fprintf oc "  \"mode\": \"%s\",\n"
    (match !mode with Common.Quick -> "quick" | Common.Full -> "full");
  Printf.fprintf oc "  \"jobs\": %d,\n" !jobs;
  Printf.fprintf oc "  \"experiments\": [\n";
  let exps = List.rev !exp_times in
  List.iteri
    (fun i (id, dt) ->
      Printf.fprintf oc "    {\"id\": \"%s\", \"wall_s\": %.3f}%s\n" id dt
        (if i = List.length exps - 1 then "" else ","))
    exps;
  Printf.fprintf oc "  ],\n";
  (match !telemetry_overhead_results with
  | Some (off_s, on_s, pct) ->
    Printf.fprintf oc
      "  \"telemetry\": {\"off_wall_s\": %.3f, \"on_wall_s\": %.3f, \"overhead_pct\": %.2f},\n"
      off_s on_s pct
  | None -> ());
  (match List.rev !speed_results with
  | [] -> ()
  | legs ->
    Printf.fprintf oc "  \"speed\": {";
    List.iteri
      (fun i (name, n, eps, mwpe) ->
        Printf.fprintf oc
          "%s\"%s_events\": %d, \"%s_events_per_sec\": %.0f, \"%s_minor_words_per_event\": %.3f"
          (if i = 0 then "" else ", ")
          name n name eps name mwpe)
      legs;
    Printf.fprintf oc "},\n");
  if !profile_shares <> [] || !tick_curve <> [] then begin
    Printf.fprintf oc "  \"profile\": {\n";
    Printf.fprintf oc "    \"subsystems\": [\n";
    let shares = !profile_shares in
    List.iteri
      (fun i (name, self_s, share, mwords) ->
        Printf.fprintf oc
          "      {\"name\": \"%s\", \"self_wall_ms\": %.3f, \"wall_share\": %.4f, \
           \"minor_words\": %.0f}%s\n"
          name (1e3 *. self_s) share mwords
          (if i = List.length shares - 1 then "" else ","))
      shares;
    Printf.fprintf oc "    ],\n";
    Printf.fprintf oc "    \"scheduler_tick\": [\n";
    let curve = List.rev !tick_curve in
    List.iteri
      (fun i (n, ns_round, ns_tenant) ->
        Printf.fprintf oc
          "      {\"tenants\": %d, \"ns_per_round\": %.0f, \"ns_per_tenant\": %.1f}%s\n" n
          ns_round ns_tenant
          (if i = List.length curve - 1 then "" else ","))
      curve;
    Printf.fprintf oc "    ]\n";
    Printf.fprintf oc "  },\n"
  end;
  (match List.rev !rack_results with
  | [] -> ()
  | rows ->
    Printf.fprintf oc "  \"rack\": {\n";
    Printf.fprintf oc "    \"policies\": [\n";
    List.iteri
      (fun i (name, n, rps) ->
        Printf.fprintf oc
          "      {\"policy\": \"%s\", \"balanced_requests\": %d, \"requests_per_sec\": %.0f}%s\n"
          name n rps
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "    ],\n";
    Printf.fprintf oc "    \"migrations\": %d\n" !rack_migration_count;
    Printf.fprintf oc "  },\n");
  (match !rack_obs_results with
  | [] -> ()
  | (inert, armed, ns, traced) :: _ ->
    Printf.fprintf oc "  \"rack_obs\": {\n";
    Printf.fprintf oc "    \"inert_requests_per_sec\": %.0f,\n" inert;
    Printf.fprintf oc "    \"armed_requests_per_sec\": %.0f,\n" armed;
    Printf.fprintf oc "    \"overhead_pct\": %.2f,\n"
      (if inert > 0.0 then (inert -. armed) /. inert *. 100.0 else 0.0);
    Printf.fprintf oc "    \"ns_per_hop_record\": %.1f,\n" ns;
    Printf.fprintf oc "    \"traced_requests\": %d\n" traced;
    Printf.fprintf oc "  },\n");
  Printf.fprintf oc "  \"micros\": [\n";
  let micros = List.rev !micro_results in
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_op\": %.2f}%s\n" name ns
        (if i = List.length micros - 1 then "" else ","))
    micros;
  Printf.fprintf oc "  ]\n";
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "[wrote %s]\n%!" path

let () =
  parse_args ();
  Runner.set_default_jobs !jobs;
  Printf.printf "ReFlex reproduction harness (%s mode, %d job%s)\n\n%!"
    (match !mode with Common.Quick -> "quick" | Common.Full -> "full")
    !jobs
    (if !jobs = 1 then "" else "s");
  List.iter (fun (id, f) -> timed id (fun () -> f !mode)) experiments;
  if enabled "telemetry" then telemetry_overhead ();
  if enabled "speed" then speed_leg ();
  if enabled "rack" then rack_leg ();
  if enabled "rack_obs" then rack_obs_leg ();
  if enabled "profile" then profile_leg ();
  if (not !skip_micro) && enabled "micro" then micro_benchmarks ();
  match !json_path with Some p -> write_json p | None -> ()
