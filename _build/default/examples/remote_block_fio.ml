(* Legacy-application path: mount a ReFlex server as a Linux block device
   (blk-mq driver model) and run FIO over it, exactly like §5.6.

     dune exec examples/remote_block_fio.exe *)

open Reflex_engine
open Reflex_apps

let () =
  let sim = Sim.create () in
  let fabric = Reflex_net.Fabric.create sim () in
  let server = Reflex_core.Server.create sim ~fabric () in
  Printf.printf "FIO 4KB random reads over the ReFlex block device (6 blk-mq contexts):\n\n";
  Printf.printf "%8s %10s %10s\n" "qd" "MB/s" "p95 (us)";
  Access_path.remote sim fabric
    ~server_host:(Reflex_core.Server.host server)
    ~accept:(Reflex_core.Server.accept server)
    ~n_contexts:6 ~tenant:1 ()
    (fun path ->
      (* Sweep queue depth; each run reuses the same device. *)
      let rec sweep = function
        | [] -> ()
        | qd :: rest ->
          Fio.run sim path ~threads:6 ~qd ~bytes:4096 ~duration:(Time.ms 150) () (fun r ->
              Printf.printf "%8d %10.1f %10.1f\n" qd r.Fio.mbps r.Fio.p95_us;
              sweep rest)
      in
      sweep [ 1; 4; 16; 64 ]);
  ignore (Sim.run sim);
  Printf.printf
    "\nThroughput saturates the 10GbE link (~1.2 GB/s at 4KB), as in Figure 7a —\n\
     with faster NICs the block device tracks local Flash.\n"
