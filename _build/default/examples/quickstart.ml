(* Quickstart: bring up a ReFlex server on a simulated 10GbE fabric,
   register a tenant, and issue a few reads and writes.

     dune exec examples/quickstart.exe *)

open Reflex_engine
open Reflex_net
open Reflex_proto
open Reflex_client

let () =
  (* A simulation, a fabric, and a ReFlex server on NVMe device A. *)
  let sim = Sim.create () in
  let fabric = Fabric.create sim () in
  let server = Reflex_core.Server.create sim ~fabric () in

  (* Connect a client using the IX (dataplane) stack — the fast path. *)
  let client =
    Client_lib.connect sim fabric
      ~server_host:(Reflex_core.Server.host server)
      ~accept:(Reflex_core.Server.accept server)
      ~stack:Stack_model.ix_client ()
  in

  (* Register a latency-critical tenant: 50K IOPS, 80% reads, p95 read
     latency no worse than 500us. *)
  Client_lib.register client ~tenant:1
    ~slo:{ Message.latency_us = 500; iops = 50_000; read_pct = 80; latency_critical = true }
    (fun status -> Printf.printf "registered: %s\n" (Message.status_to_string status));
  ignore (Sim.run sim);

  (* Write a block, read it back, time both. *)
  Client_lib.write client ~lba:42L ~len:4096 (fun status ~latency ->
      Printf.printf "write 4KB @ lba 42: %s in %s\n"
        (Message.status_to_string status)
        (Time.to_string latency));
  ignore (Sim.run sim);
  Client_lib.read client ~lba:42L ~len:4096 (fun status ~latency ->
      Printf.printf "read  4KB @ lba 42: %s in %s\n"
        (Message.status_to_string status)
        (Time.to_string latency));
  ignore (Sim.run sim);

  (* Ordering: a barrier completes only after every earlier I/O has. *)
  Client_lib.write client ~lba:100L ~len:4096 (fun _ ~latency:_ -> ());
  Client_lib.write client ~lba:101L ~len:4096 (fun _ ~latency:_ -> ());
  Client_lib.barrier client (fun status ~latency ->
      Printf.printf "barrier (after 2 writes): %s in %s\n"
        (Message.status_to_string status)
        (Time.to_string latency));
  ignore (Sim.run sim);

  (* A short steady-state probe: queue-depth-1 reads for 100ms. *)
  let gen =
    Load_gen.closed_loop sim ~client ~depth:1 ~think:(Time.us 50) ~read_ratio:1.0 ~bytes:4096
      ~until:(Time.add (Sim.now sim) (Time.ms 100))
      ()
  in
  ignore (Sim.run sim);
  Printf.printf "unloaded read latency: avg %.1fus, p95 %.1fus (%d samples)\n"
    (Load_gen.mean_read_us gen) (Load_gen.p95_read_us gen)
    (Reflex_stats.Hdr_histogram.count (Load_gen.reads gen));
  Printf.printf "(paper Table 2, ReFlex IX client: 99us avg / 113us p95)\n"
