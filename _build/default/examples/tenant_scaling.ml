(* Thousands of tenants on a single ReFlex core (the Figure 6b flavour):
   each tenant is one connection issuing 100 IOPS of 1KB reads.

     dune exec examples/tenant_scaling.exe *)

open Reflex_engine
open Reflex_net
open Reflex_proto
open Reflex_client

let run ~tenants =
  let sim = Sim.create () in
  let fabric = Fabric.create sim () in
  let server = Reflex_core.Server.create sim ~fabric ~n_threads:1 () in
  let hosts =
    Array.init 8 (fun i ->
        Fabric.add_host fabric ~name:(Printf.sprintf "client-%d" i) ~stack:Stack_model.ix_client)
  in
  let clients =
    List.init tenants (fun i ->
        let c =
          Client_lib.connect sim fabric
            ~server_host:(Reflex_core.Server.host server)
            ~accept:(Reflex_core.Server.accept server)
            ~stack:Stack_model.ix_client
            ~host:hosts.(i mod 8) ()
        in
        Client_lib.register c ~tenant:(i + 1)
          ~slo:{ Message.latency_us = 2000; iops = 100; read_pct = 100; latency_critical = true }
          (fun _ -> ());
        c)
  in
  ignore (Sim.run sim);
  let admitted = List.filter (fun c -> Client_lib.handle c <> None) clients in
  let until = Time.add (Sim.now sim) (Time.ms 250) in
  let gens =
    List.mapi
      (fun i c ->
        Load_gen.open_loop sim ~client:c ~pacing:`Cbr ~rate:100.0 ~read_ratio:1.0 ~bytes:1024
          ~until ~seed:(Int64.of_int i) ())
      admitted
  in
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 50)) sim);
  List.iter Load_gen.mark_measurement_start gens;
  ignore (Sim.run ~until sim);
  List.iter Load_gen.freeze_window gens;
  ignore (Sim.run sim);
  let achieved = List.fold_left (fun a g -> a +. Load_gen.achieved_iops g) 0.0 gens in
  let p95 = List.fold_left (fun a g -> Float.max a (Load_gen.p95_read_us g)) 0.0 gens in
  (List.length admitted, achieved, p95)

let () =
  Printf.printf "Tenants on one ReFlex core, 100 x 1KB-read IOPS each:\n\n";
  Printf.printf "%10s %10s %15s %12s\n" "requested" "admitted" "achieved KIOPS" "p95 (us)";
  List.iter
    (fun tenants ->
      let admitted, achieved, p95 = run ~tenants in
      Printf.printf "%10d %10d %15.1f %12.1f\n" tenants admitted (achieved /. 1e3) p95)
    [ 500; 1500; 2500 ];
  Printf.printf "\nA single core handles ~2.5K tenants (paper §5.5) before scheduler\n\
                 bookkeeping and per-request costs saturate it.\n"
