examples/tenant_scaling.mli:
