examples/remote_block_fio.mli:
