examples/remote_block_fio.ml: Access_path Fio Printf Reflex_apps Reflex_core Reflex_engine Reflex_net Sim Time
