examples/tenant_scaling.ml: Array Client_lib Fabric Float Int64 List Load_gen Message Printf Reflex_client Reflex_core Reflex_engine Reflex_net Reflex_proto Sim Stack_model Time
