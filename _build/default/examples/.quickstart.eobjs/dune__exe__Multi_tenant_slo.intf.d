examples/multi_tenant_slo.mli:
