examples/quickstart.mli:
