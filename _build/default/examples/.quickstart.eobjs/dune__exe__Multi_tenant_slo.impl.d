examples/multi_tenant_slo.ml: Client_lib Load_gen Message Printf Reflex_client Reflex_core Reflex_engine Reflex_net Reflex_proto Sim Time
