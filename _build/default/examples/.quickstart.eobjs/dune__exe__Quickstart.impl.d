examples/quickstart.ml: Client_lib Fabric Load_gen Message Printf Reflex_client Reflex_core Reflex_engine Reflex_net Reflex_proto Reflex_stats Sim Stack_model Time
