(* Tests for the wire protocol: codec roundtrips and stream framing. *)

open Reflex_proto

let sample_messages =
  [
    Message.Register
      {
        tenant = 42;
        slo = { latency_us = 500; iops = 120_000; read_pct = 80; latency_critical = true };
      };
    Message.Register { tenant = 7; slo = Message.best_effort_slo };
    Message.Unregister { handle = 3 };
    Message.Read_req { handle = 1; req_id = 99L; lba = 123_456L; len = 4096 };
    Message.Write_req { handle = 2; req_id = 100L; lba = 0L; len = 1024 };
    Message.Registered { handle = 5; status = Message.Ok };
    Message.Registered { handle = 5; status = Message.No_capacity };
    Message.Unregistered { handle = 5 };
    Message.Read_resp { req_id = 99L; status = Message.Ok; len = 4096 };
    Message.Read_resp { req_id = 98L; status = Message.Out_of_range; len = 0 };
    Message.Write_resp { req_id = 100L; status = Message.Ok };
    Message.Barrier_req { handle = 3; req_id = 55L };
    Message.Barrier_resp { req_id = 55L };
    Message.Error_resp { req_id = 1L; status = Message.Bad_request };
  ]

let msg_testable = Alcotest.testable Message.pp Message.equal

let test_roundtrip_all () =
  List.iter
    (fun msg ->
      let buf = Codec.encode msg in
      Alcotest.(check int) "encoded_size matches" (Bytes.length buf) (Codec.encoded_size msg);
      let decoded, consumed = Codec.decode buf 0 in
      Alcotest.check msg_testable "roundtrip" msg decoded;
      Alcotest.(check int) "consumed everything" (Bytes.length buf) consumed)
    sample_messages

let test_payload_sizes () =
  let read_req = Message.Read_req { handle = 1; req_id = 1L; lba = 0L; len = 4096 } in
  Alcotest.(check int) "read request carries no data" Codec.header_size
    (Codec.encoded_size read_req);
  let write_req = Message.Write_req { handle = 1; req_id = 1L; lba = 0L; len = 4096 } in
  Alcotest.(check int) "write request carries data" (Codec.header_size + 4096)
    (Codec.encoded_size write_req);
  let resp_ok = Message.Read_resp { req_id = 1L; status = Message.Ok; len = 4096 } in
  Alcotest.(check int) "ok read response carries data" (Codec.header_size + 4096)
    (Codec.encoded_size resp_ok);
  let resp_err = Message.Read_resp { req_id = 1L; status = Message.Out_of_range; len = 4096 } in
  Alcotest.(check int) "failed read response carries none" Codec.header_size
    (Codec.encoded_size resp_err);
  (* Paper: per-4KB-request overhead is tens of bytes. *)
  Alcotest.(check bool) "header under 40 bytes" true (Codec.header_size <= 40)

let test_bad_magic () =
  let buf = Codec.encode (Message.Unregister { handle = 1 }) in
  Bytes.set_uint8 buf 0 0xFF;
  Alcotest.check_raises "bad magic" (Invalid_argument "Codec.decode: bad magic") (fun () ->
      ignore (Codec.decode buf 0))

let test_bad_opcode () =
  let buf = Codec.encode (Message.Unregister { handle = 1 }) in
  Bytes.set_uint8 buf 2 99;
  Alcotest.check_raises "unknown opcode" (Invalid_argument "Codec.decode: unknown opcode 99")
    (fun () -> ignore (Codec.decode buf 0))

let test_short_buffer () =
  Alcotest.check_raises "short header" (Invalid_argument "Codec.decode: short header") (fun () ->
      ignore (Codec.decode (Bytes.create 4) 0))

let test_encode_into_offset () =
  let msg = Message.Read_req { handle = 9; req_id = 5L; lba = 77L; len = 512 } in
  let buf = Bytes.make (Codec.header_size + 10) '\xAA' in
  let n = Codec.encode_into msg buf 10 in
  Alcotest.(check int) "bytes written" Codec.header_size n;
  let decoded, _ = Codec.decode buf 10 in
  Alcotest.check msg_testable "decodes at offset" msg decoded;
  Alcotest.check_raises "no room" (Invalid_argument "Codec.encode_into: buffer too small")
    (fun () -> ignore (Codec.encode_into msg buf 11))

let test_framer_whole_messages () =
  let f = Framer.create () in
  List.iter
    (fun msg ->
      let b = Codec.encode msg in
      Framer.feed f b ~off:0 ~len:(Bytes.length b))
    sample_messages;
  let out = Framer.pop_all f in
  Alcotest.(check (list msg_testable)) "all messages in order" sample_messages out;
  Alcotest.(check int) "nothing buffered" 0 (Framer.buffered f)

let test_framer_byte_by_byte () =
  let f = Framer.create () in
  let stream = Bytes.concat Bytes.empty (List.map Codec.encode sample_messages) in
  let out = ref [] in
  Bytes.iteri
    (fun i _ ->
      Framer.feed f stream ~off:i ~len:1;
      match Framer.pop f with Some m -> out := m :: !out | None -> ())
    stream;
  Alcotest.(check (list msg_testable)) "byte-at-a-time framing" sample_messages (List.rev !out)

let test_framer_partial_payload () =
  let f = Framer.create () in
  let msg = Message.Write_req { handle = 1; req_id = 1L; lba = 0L; len = 4096 } in
  let b = Codec.encode msg in
  (* Header plus half the payload: not yet a message. *)
  Framer.feed f b ~off:0 ~len:(Codec.header_size + 2048);
  Alcotest.(check bool) "incomplete" true (Framer.pop f = None);
  Framer.feed f b ~off:(Codec.header_size + 2048) ~len:2048;
  (match Framer.pop f with
  | Some m -> Alcotest.check msg_testable "completes" msg m
  | None -> Alcotest.fail "message should be complete");
  Alcotest.(check bool) "drained" true (Framer.pop f = None)

let test_framer_bad_slice () =
  let f = Framer.create () in
  Alcotest.check_raises "bad slice" (Invalid_argument "Framer.feed: bad slice") (fun () ->
      Framer.feed f (Bytes.create 4) ~off:2 ~len:10)

let gen_msg =
  QCheck.Gen.(
    let status = oneofl [ Message.Ok; Message.Denied; Message.No_capacity; Message.Bad_request; Message.Out_of_range ] in
    let id = map Int64.of_int (int_range 0 0x3FFFFFFF) in
    let small = int_range 0 0xFFFFFF in
    oneof
      [
        map
          (fun (t, (l, i, r, lc)) ->
            Message.Register
              { tenant = t; slo = { latency_us = l; iops = i; read_pct = r; latency_critical = lc } })
          (pair (int_range 0 10_000) (quad (int_range 0 100_000) small (int_range 0 100) bool));
        map (fun h -> Message.Unregister { handle = h }) (int_range 0 10_000);
        map
          (fun (h, (id, lba, len)) -> Message.Read_req { handle = h; req_id = id; lba; len })
          (pair (int_range 0 10_000) (triple id (map Int64.of_int small) (int_range 1 65536)));
        map
          (fun (h, (id, lba, len)) -> Message.Write_req { handle = h; req_id = id; lba; len })
          (pair (int_range 0 10_000) (triple id (map Int64.of_int small) (int_range 1 65536)));
        map (fun (id, s) -> Message.Write_resp { req_id = id; status = s }) (pair id status);
        map
          (fun (id, s, len) -> Message.Read_resp { req_id = id; status = s; len })
          (triple id status (int_range 0 65536));
      ])

let arb_msg = QCheck.make ~print:(Format.asprintf "%a" Message.pp) gen_msg

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrips arbitrary messages" ~count:500 arb_msg (fun msg ->
      let buf = Codec.encode msg in
      let decoded, consumed = Codec.decode buf 0 in
      Message.equal msg decoded && consumed = Bytes.length buf)

let prop_framer_random_chunks =
  QCheck.Test.make ~name:"framer reassembles under random chunking" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 1 20) arb_msg) (int_range 1 200))
    (fun (msgs, chunk_size) ->
      let stream = Bytes.concat Bytes.empty (List.map Codec.encode msgs) in
      let f = Framer.create () in
      let out = ref [] in
      let n = Bytes.length stream in
      let rec feed off =
        if off < n then begin
          let len = min chunk_size (n - off) in
          Framer.feed f stream ~off ~len;
          out := List.rev_append (Framer.pop_all f) !out;
          feed (off + len)
        end
      in
      feed 0;
      List.rev !out = msgs)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "codec",
      [
        Alcotest.test_case "roundtrip all message kinds" `Quick test_roundtrip_all;
        Alcotest.test_case "payload sizing" `Quick test_payload_sizes;
        Alcotest.test_case "bad magic" `Quick test_bad_magic;
        Alcotest.test_case "bad opcode" `Quick test_bad_opcode;
        Alcotest.test_case "short buffer" `Quick test_short_buffer;
        Alcotest.test_case "encode at offset" `Quick test_encode_into_offset;
        qcheck prop_codec_roundtrip;
      ] );
    ( "framer",
      [
        Alcotest.test_case "whole messages" `Quick test_framer_whole_messages;
        Alcotest.test_case "byte-by-byte" `Quick test_framer_byte_by_byte;
        Alcotest.test_case "partial payload" `Quick test_framer_partial_payload;
        Alcotest.test_case "bad slice" `Quick test_framer_bad_slice;
        qcheck prop_framer_random_chunks;
      ] );
  ]
