(* Tests for the simulated NVMe Flash substrate. *)

open Reflex_engine
open Reflex_stats
open Reflex_flash

let fast_config =
  { Calibrate.duration = Time.ms 150; warmup = Time.ms 50; seed = 0xF1A5_7E57L }

(* ------------------------------------------------------------------ *)
(* Io_op                                                              *)
(* ------------------------------------------------------------------ *)

let test_sectors () =
  Alcotest.(check int) "1KB costs like 4KB" 1 (Io_op.sectors_of_bytes 1024);
  Alcotest.(check int) "4KB" 1 (Io_op.sectors_of_bytes 4096);
  Alcotest.(check int) "4KB+1 rounds up" 2 (Io_op.sectors_of_bytes 4097);
  Alcotest.(check int) "32KB = 8 sectors" 8 (Io_op.sectors_of_bytes 32768);
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Io_op.sectors_of_bytes: non-positive size") (fun () ->
      ignore (Io_op.sectors_of_bytes 0))

(* ------------------------------------------------------------------ *)
(* Device_profile                                                     *)
(* ------------------------------------------------------------------ *)

let test_profiles () =
  Alcotest.(check int) "three profiles" 3 (List.length Device_profile.all);
  (match Device_profile.by_name "a" with
  | Some p -> Alcotest.(check string) "lookup case-insensitive" "A" p.Device_profile.name
  | None -> Alcotest.fail "device A not found");
  Alcotest.(check bool) "unknown device" true (Device_profile.by_name "Z" = None);
  (* Paper-calibrated operating points. *)
  let a = Device_profile.device_a in
  Alcotest.(check bool) "device A ~1M+ read-only IOPS" true
    (Device_profile.read_only_iops a > 0.9e6);
  Alcotest.(check bool) "device A ~550K tokens/s" true
    (abs_float (Device_profile.token_capacity a -. 550e3) < 50e3);
  Alcotest.(check (float 1e-9)) "write cost A" 10.0 a.Device_profile.write_cost;
  Alcotest.(check (float 1e-9)) "write cost B" 20.0 Device_profile.device_b.Device_profile.write_cost;
  Alcotest.(check (float 1e-9)) "write cost C" 16.0 Device_profile.device_c.Device_profile.write_cost

(* ------------------------------------------------------------------ *)
(* Nvme_model                                                         *)
(* ------------------------------------------------------------------ *)

let make_dev ?(profile = Device_profile.device_a) () =
  let sim = Sim.create () in
  let dev = Nvme_model.create sim ~profile ~prng:(Prng.split (Sim.prng sim)) in
  (sim, dev)

(* Sequential queue-depth-1 probes of one I/O kind; returns (mean, p95) us. *)
let probe_qd1 sim dev ~kind ~bytes ~count =
  let res = Reservoir.create (Prng.create 99L) in
  let remaining = ref count in
  let rec next () =
    if !remaining > 0 then begin
      decr remaining;
      Nvme_model.submit dev ~kind ~bytes (fun ~latency ->
          Reservoir.add res (Time.to_float_us latency);
          ignore (Sim.after sim (Time.us 100) next))
    end
  in
  ignore (Sim.at sim (Sim.now sim) next);
  ignore (Sim.run sim);
  (Reservoir.mean res, Reservoir.percentile res 95.0)

let test_unloaded_read_latency () =
  let sim, dev = make_dev () in
  let mean, p95 = probe_qd1 sim dev ~kind:Io_op.Read ~bytes:4096 ~count:2000 in
  (* Table 2, local SPDK row: 78us avg / 90us p95 (4KB random read). *)
  Alcotest.(check bool) (Printf.sprintf "mean %.1f in [70,86]" mean) true (mean > 70.0 && mean < 86.0);
  Alcotest.(check bool) (Printf.sprintf "p95 %.1f in [82,100]" p95) true (p95 > 82.0 && p95 < 100.0)

let test_unloaded_write_latency () =
  let sim, dev = make_dev () in
  let mean, p95 = probe_qd1 sim dev ~kind:Io_op.Write ~bytes:4096 ~count:2000 in
  (* Table 2, local SPDK row: 11us avg / 17us p95 (DRAM-buffered). *)
  Alcotest.(check bool) (Printf.sprintf "mean %.1f in [8,14]" mean) true (mean > 8.0 && mean < 14.0);
  Alcotest.(check bool) (Printf.sprintf "p95 %.1f in [13,22]" p95) true (p95 > 13.0 && p95 < 22.0)

let test_large_reads_cost_more () =
  let sim, dev = make_dev () in
  let mean_4k, _ = probe_qd1 sim dev ~kind:Io_op.Read ~bytes:4096 ~count:300 in
  let sim2, dev2 = make_dev () in
  let mean_32k, _ = probe_qd1 sim2 dev2 ~kind:Io_op.Read ~bytes:32768 ~count:300 in
  Alcotest.(check bool)
    (Printf.sprintf "32KB (%.0fus) slower than 4KB (%.0fus)" mean_32k mean_4k)
    true
    (mean_32k > mean_4k *. 2.0)

let test_small_reads_cost_constant () =
  let sim, dev = make_dev () in
  let mean_1k, _ = probe_qd1 sim dev ~kind:Io_op.Read ~bytes:1024 ~count:500 in
  let sim2, dev2 = make_dev () in
  let mean_4k, _ = probe_qd1 sim2 dev2 ~kind:Io_op.Read ~bytes:4096 ~count:500 in
  Alcotest.(check bool) "1KB ~ 4KB latency" true (abs_float (mean_1k -. mean_4k) < 5.0)

let test_read_only_mode_window () =
  let sim, dev = make_dev () in
  Alcotest.(check bool) "starts read-only" true (Nvme_model.read_only_mode dev);
  Nvme_model.submit dev ~kind:Io_op.Write ~bytes:4096 (fun ~latency:_ -> ());
  Alcotest.(check bool) "write leaves read-only mode" false (Nvme_model.read_only_mode dev);
  ignore (Sim.run sim);
  (* Past the ro_window with no further writes, the fast path returns. *)
  ignore (Sim.at sim (Time.add (Sim.now sim) (Time.ms 2)) (fun () -> ()));
  ignore (Sim.run sim);
  Alcotest.(check bool) "read-only restored after window" true (Nvme_model.read_only_mode dev)

let test_write_buffer_bounded () =
  let sim, dev = make_dev () in
  let slots = Device_profile.device_a.Device_profile.write_buffer_slots in
  let acked = ref 0 in
  (* Flood far beyond the buffer in zero time. *)
  for _ = 1 to 4 * slots do
    Nvme_model.submit dev ~kind:Io_op.Write ~bytes:4096 (fun ~latency:_ -> incr acked)
  done;
  Alcotest.(check bool) "occupancy capped" true (Nvme_model.write_buffer_used dev <= slots);
  ignore (Sim.run sim);
  Alcotest.(check int) "all writes eventually ack" (4 * slots) !acked;
  Alcotest.(check int) "buffer drains" 0 (Nvme_model.write_buffer_used dev)

let test_interference_raises_read_tail () =
  (* Fixed read load; adding writes must raise the read tail (Figure 1). *)
  let p95_with_writes write_rate =
    let pt =
      Calibrate.measure ~config:fast_config Device_profile.device_a
        ~read_ratio:(100_000.0 /. (100_000.0 +. write_rate))
        ~bytes:4096
        ~rate:(100_000.0 +. write_rate)
    in
    pt.Calibrate.p95_read_us
  in
  let p0 = p95_with_writes 0.0 in
  let p20 = p95_with_writes 20_000.0 in
  let p60 = p95_with_writes 60_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p95 %.0f < %.0f < %.0f" p0 p20 p60)
    true
    (p0 < p20 && p20 < p60 && p60 > 2.0 *. p0)

let test_hockey_stick () =
  (* Read-only load: modest latency at 800K IOPS, blow-up past device
     capacity (~1.1M). *)
  let p95 rate =
    (Calibrate.measure ~config:fast_config Device_profile.device_a ~read_ratio:1.0 ~bytes:4096
       ~rate)
      .Calibrate.p95_read_us
  in
  let low = p95 400_000.0 and mid = p95 900_000.0 and over = p95 1_200_000.0 in
  Alcotest.(check bool) (Printf.sprintf "low load flat: %.0fus" low) true (low < 150.0);
  Alcotest.(check bool) (Printf.sprintf "near capacity rises: %.0fus" mid) true (mid < 1_000.0);
  Alcotest.(check bool) (Printf.sprintf "overload explodes: %.0fus" over) true (over > 5_000.0)

let test_wear_slows_device () =
  (* An aged device (paper §3.2.1: recalibrate for wear-out) serves the
     same load with higher latency and a lower SLO-constrained rate. *)
  let worn = Device_profile.with_wear Device_profile.device_a ~wear:1.5 in
  let fresh_pt =
    Calibrate.measure ~config:fast_config Device_profile.device_a ~read_ratio:1.0 ~bytes:4096
      ~rate:400_000.0
  in
  let worn_pt = Calibrate.measure ~config:fast_config worn ~read_ratio:1.0 ~bytes:4096 ~rate:400_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "worn slower (%.0f > %.0f)" worn_pt.Calibrate.p95_read_us
       fresh_pt.Calibrate.p95_read_us)
    true
    (worn_pt.Calibrate.p95_read_us > 1.2 *. fresh_pt.Calibrate.p95_read_us);
  Alcotest.check_raises "wear below 1 rejected"
    (Invalid_argument "Device_profile.with_wear: wear < 1.0") (fun () ->
      ignore (Device_profile.with_wear Device_profile.device_a ~wear:0.5))

let test_wear_recalibration () =
  (* Re-running the §3.2.1 calibration on the worn device yields a lower
     sustainable token rate for the control plane to use. *)
  let worn = Device_profile.with_wear Device_profile.device_a ~wear:1.5 in
  let fresh = Calibrate.max_token_rate ~config:fast_config Device_profile.device_a ~p95_target_us:1000.0 in
  let aged = Calibrate.max_token_rate ~config:fast_config worn ~p95_target_us:1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "recalibrated rate lower (%.0fK < %.0fK)" (aged /. 1e3) (fresh /. 1e3))
    true (aged < 0.85 *. fresh)

let test_utilization_counts () =
  let sim, dev = make_dev () in
  for _ = 1 to 100 do
    Nvme_model.submit dev ~kind:Io_op.Read ~bytes:4096 (fun ~latency:_ -> ())
  done;
  ignore (Sim.run sim);
  Alcotest.(check int) "reads counted" 100 (Nvme_model.reads_completed dev);
  Alcotest.(check bool) "utilization positive" true (Nvme_model.utilization dev > 0.0)

(* ------------------------------------------------------------------ *)
(* Queue_pair                                                         *)
(* ------------------------------------------------------------------ *)

let test_qp_roundtrip () =
  let sim, dev = make_dev () in
  let qp = Queue_pair.create dev in
  Alcotest.(check bool) "submit ok" true (Queue_pair.submit qp ~kind:Io_op.Read ~bytes:4096 ~cookie:7 = `Ok);
  Alcotest.(check int) "inflight" 1 (Queue_pair.inflight qp);
  ignore (Sim.run sim);
  Alcotest.(check int) "completion pending" 1 (Queue_pair.completions_pending qp);
  (match Queue_pair.poll qp ~max:16 with
  | [ c ] ->
    Alcotest.(check int) "cookie" 7 c.Queue_pair.cookie;
    Alcotest.(check bool) "kind" true (Io_op.equal_kind c.Queue_pair.kind Io_op.Read);
    Alcotest.(check bool) "latency plausible" true Time.(c.Queue_pair.latency > Time.us 30)
  | l -> Alcotest.failf "expected 1 completion, got %d" (List.length l));
  Alcotest.(check int) "drained" 0 (Queue_pair.completions_pending qp)

let test_qp_full () =
  let sim, dev = make_dev () in
  let qp = Queue_pair.create dev in
  let depth = Device_profile.device_a.Device_profile.sq_depth in
  for i = 1 to depth do
    match Queue_pair.submit qp ~kind:Io_op.Read ~bytes:4096 ~cookie:i with
    | `Ok -> ()
    | `Full -> Alcotest.failf "premature Full at %d" i
  done;
  Alcotest.(check bool) "rejects past depth" true
    (Queue_pair.submit qp ~kind:Io_op.Read ~bytes:4096 ~cookie:0 = `Full);
  ignore (Sim.run sim);
  Alcotest.(check int) "all complete" depth (Queue_pair.completions_pending qp)

let test_qp_poll_max () =
  let sim, dev = make_dev () in
  let qp = Queue_pair.create dev in
  for i = 1 to 10 do
    ignore (Queue_pair.submit qp ~kind:Io_op.Write ~bytes:4096 ~cookie:i)
  done;
  ignore (Sim.run sim);
  Alcotest.(check int) "poll bounded" 4 (List.length (Queue_pair.poll qp ~max:4));
  Alcotest.(check int) "rest remain" 6 (Queue_pair.completions_pending qp)

(* ------------------------------------------------------------------ *)
(* Calibrate                                                          *)
(* ------------------------------------------------------------------ *)

let test_measure_tracks_offered_load () =
  let pt =
    Calibrate.measure ~config:fast_config Device_profile.device_a ~read_ratio:0.9 ~bytes:4096
      ~rate:100_000.0
  in
  Alcotest.(check bool) "achieved ~ offered" true
    (abs_float (pt.Calibrate.achieved_iops -. 100_000.0) < 10_000.0);
  Alcotest.(check bool) "read split" true
    (abs_float (pt.Calibrate.achieved_read_iops -. 90_000.0) < 8_000.0)

let test_max_rate_monotone_in_slo () =
  let t_strict =
    Calibrate.max_rate_for_slo ~config:fast_config Device_profile.device_a ~read_ratio:0.9
      ~bytes:4096 ~p95_target_us:300.0
  in
  let t_loose =
    Calibrate.max_rate_for_slo ~config:fast_config Device_profile.device_a ~read_ratio:0.9
      ~bytes:4096 ~p95_target_us:5_000.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "looser SLO admits more IOPS (%.0f < %.0f)" t_strict t_loose)
    true (t_strict < t_loose)

let test_fit_recovers_write_cost () =
  (* The headline calibration result: the linear token model fits the
     simulated device A with a write cost near 10 and a read-only read
     cost near 1/2 (paper Figure 3a). *)
  let f =
    Calibrate.fit_cost_model ~config:fast_config
      ~read_ratios:[ 0.95; 0.9; 0.75; 0.5 ]
      Device_profile.device_a ~p95_target_us:1_000.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "write cost %.1f in [6,14]" f.Calibrate.write_cost)
    true
    (f.Calibrate.write_cost > 6.0 && f.Calibrate.write_cost < 14.0);
  Alcotest.(check bool)
    (Printf.sprintf "ro read cost %.2f in [0.3,0.75]" f.Calibrate.ro_read_cost)
    true
    (f.Calibrate.ro_read_cost > 0.3 && f.Calibrate.ro_read_cost < 0.75);
  Alcotest.(check bool) (Printf.sprintf "linear fit r2=%.3f" f.Calibrate.fit_r2) true
    (f.Calibrate.fit_r2 > 0.98);
  Alcotest.(check bool)
    (Printf.sprintf "token rate %.0fK near 550K" (f.Calibrate.token_rate /. 1e3))
    true
    (f.Calibrate.token_rate > 400e3 && f.Calibrate.token_rate < 700e3)

let test_max_token_rate_near_capacity () =
  let k = Calibrate.max_token_rate ~config:fast_config Device_profile.device_a ~p95_target_us:2_000.0 in
  (* Paper: 570K tokens/s at the 2ms SLO for device A. *)
  Alcotest.(check bool)
    (Printf.sprintf "K@2ms = %.0fK in [450K,700K]" (k /. 1e3))
    true
    (k > 450e3 && k < 700e3)

let suite =
  [
    ("io_op", [ Alcotest.test_case "sector rounding" `Quick test_sectors ]);
    ("device_profile", [ Alcotest.test_case "profiles" `Quick test_profiles ]);
    ( "nvme_model",
      [
        Alcotest.test_case "unloaded read latency (Table 2)" `Quick test_unloaded_read_latency;
        Alcotest.test_case "unloaded write latency (Table 2)" `Quick test_unloaded_write_latency;
        Alcotest.test_case "large reads cost more" `Quick test_large_reads_cost_more;
        Alcotest.test_case "<=4KB cost constant" `Quick test_small_reads_cost_constant;
        Alcotest.test_case "read-only window" `Quick test_read_only_mode_window;
        Alcotest.test_case "write buffer bounded" `Quick test_write_buffer_bounded;
        Alcotest.test_case "write interference raises read tail (Fig 1)" `Slow
          test_interference_raises_read_tail;
        Alcotest.test_case "hockey-stick latency curve (Fig 1)" `Slow test_hockey_stick;
        Alcotest.test_case "counters" `Quick test_utilization_counts;
        Alcotest.test_case "wear slows the device" `Slow test_wear_slows_device;
        Alcotest.test_case "wear recalibration (SS3.2.1)" `Slow test_wear_recalibration;
      ] );
    ( "queue_pair",
      [
        Alcotest.test_case "submit/poll roundtrip" `Quick test_qp_roundtrip;
        Alcotest.test_case "full at sq_depth" `Quick test_qp_full;
        Alcotest.test_case "poll bounded by max" `Quick test_qp_poll_max;
      ] );
    ( "calibrate",
      [
        Alcotest.test_case "achieved tracks offered" `Quick test_measure_tracks_offered_load;
        Alcotest.test_case "SLO-rate monotone" `Slow test_max_rate_monotone_in_slo;
        Alcotest.test_case "fit recovers cost model (Fig 3a)" `Slow test_fit_recovers_write_cost;
        Alcotest.test_case "token rate at 2ms SLO" `Slow test_max_token_rate_near_capacity;
      ] );
  ]
