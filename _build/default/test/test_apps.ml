(* Tests for the application workload models (FIO, FlashX, RocksDB) and
   the access-path abstraction. *)

open Reflex_engine
open Reflex_flash
open Reflex_apps

let local_path sim = Access_path.local (Reflex_baselines.Local.create sim ())

let reflex_path () =
  let sim = Sim.create () in
  let fabric = Reflex_net.Fabric.create sim () in
  let server = Reflex_core.Server.create sim ~fabric () in
  let path = ref None in
  Access_path.remote sim fabric
    ~server_host:(Reflex_core.Server.host server)
    ~accept:(Reflex_core.Server.accept server)
    ~n_contexts:2 ~tenant:1 ()
    (fun p -> path := Some p);
  ignore (Sim.run sim);
  match !path with Some p -> (sim, p) | None -> Alcotest.fail "remote path not ready"

(* ------------------------------------------------------------------ *)
(* Access_path                                                        *)
(* ------------------------------------------------------------------ *)

let test_access_path_local () =
  let sim = Sim.create () in
  let path = local_path sim in
  let lat = ref None in
  Access_path.submit path ~kind:Io_op.Read ~lba:0L ~bytes:4096 (fun ~latency -> lat := Some latency);
  ignore (Sim.run sim);
  match !lat with
  | Some l -> Alcotest.(check bool) "local latency ~78us" true Time.(l > Time.us 40 && l < Time.us 200)
  | None -> Alcotest.fail "no completion"

let test_access_path_remote () =
  let sim, path = reflex_path () in
  let lat = ref None in
  Access_path.submit path ~kind:Io_op.Write ~lba:5L ~bytes:4096 (fun ~latency -> lat := Some latency);
  ignore (Sim.run sim);
  match !lat with
  | Some l ->
    (* Linux block-device write path: tens of microseconds. *)
    Alcotest.(check bool) "remote write completes" true Time.(l > Time.us 20 && l < Time.ms 2)
  | None -> Alcotest.fail "no completion"

(* ------------------------------------------------------------------ *)
(* Workload engine                                                    *)
(* ------------------------------------------------------------------ *)

let test_workload_serial_phase_latency_bound () =
  (* 100 dependent reads with no think time: elapsed ~ 100 x latency. *)
  let sim = Sim.create () in
  let path = local_path sim in
  let elapsed = ref Time.zero in
  Workload.run sim path
    [ Workload.Serial { ios = 100; think = Time.zero; read_ratio = 1.0; bytes = 4096 } ]
    (fun ~elapsed:e -> elapsed := e);
  ignore (Sim.run sim);
  let ms = Time.to_float_ms !elapsed in
  (* ~100 x 78us = 7.8ms *)
  Alcotest.(check bool) (Printf.sprintf "serial elapsed %.1fms in [6,11]" ms) true
    (ms > 6.0 && ms < 11.0)

let test_workload_parallel_phase_demand_bound () =
  (* 10K IOs at 100K demand with a wide window: elapsed ~ 100ms. *)
  let sim = Sim.create () in
  let path = local_path sim in
  let elapsed = ref Time.zero in
  Workload.run sim path
    [
      Workload.Parallel
        { ios = 10_000; demand_iops = 100_000.0; window = 64; read_ratio = 1.0; bytes = 4096 };
    ]
    (fun ~elapsed:e -> elapsed := e);
  ignore (Sim.run sim);
  let ms = Time.to_float_ms !elapsed in
  Alcotest.(check bool) (Printf.sprintf "parallel elapsed %.1fms ~ 100" ms) true
    (ms > 95.0 && ms < 115.0)

let test_workload_phases_sequential () =
  let sim = Sim.create () in
  let path = local_path sim in
  let elapsed = ref Time.zero in
  let phases =
    [
      Workload.Serial { ios = 10; think = Time.us 100; read_ratio = 1.0; bytes = 4096 };
      Workload.Serial { ios = 10; think = Time.us 100; read_ratio = 0.0; bytes = 4096 };
    ]
  in
  Alcotest.(check int) "total_ios" 20 (Workload.total_ios phases);
  Workload.run sim path phases (fun ~elapsed:e -> elapsed := e);
  ignore (Sim.run sim);
  Alcotest.(check bool) "both phases ran" true Time.(!elapsed > Time.ms 1)

let test_workload_window_throttles () =
  (* A tight window against a slow path caps throughput below demand:
     window 1 -> closed loop at ~1/latency. *)
  let sim = Sim.create () in
  let path = local_path sim in
  let elapsed = ref Time.zero in
  Workload.run sim path
    [
      Workload.Parallel
        { ios = 500; demand_iops = 1_000_000.0; window = 1; read_ratio = 1.0; bytes = 4096 };
    ]
    (fun ~elapsed:e -> elapsed := e);
  ignore (Sim.run sim);
  let ms = Time.to_float_ms !elapsed in
  (* 500 x ~78us = ~39ms, far above 500/1M = 0.5ms. *)
  Alcotest.(check bool) (Printf.sprintf "window-bound %.1fms > 30" ms) true (ms > 30.0)

(* ------------------------------------------------------------------ *)
(* Fio                                                                *)
(* ------------------------------------------------------------------ *)

let test_fio_reports_throughput () =
  let sim = Sim.create () in
  let path = local_path sim in
  let result = ref None in
  Fio.run sim path ~threads:2 ~qd:8 ~bytes:4096 ~duration:(Time.ms 100) () (fun r ->
      result := Some r);
  ignore (Sim.run sim);
  match !result with
  | Some r ->
    Alcotest.(check bool) "iops positive" true (r.Fio.iops > 10_000.0);
    Alcotest.(check (float 1e-6)) "mbps consistent" (r.Fio.iops *. 4096.0 /. 1e6) r.Fio.mbps;
    Alcotest.(check bool) "p95 >= mean" true (r.Fio.p95_us >= r.Fio.mean_us);
    Alcotest.(check bool) "completed counted" true (r.Fio.completed > 0)
  | None -> Alcotest.fail "fio did not finish"

let test_fio_thread_cpu_cap () =
  (* One FIO thread at 7us/IO caps near 140K IOPS even at deep qd. *)
  let sim = Sim.create () in
  let path = local_path sim in
  let result = ref None in
  Fio.run sim path ~threads:1 ~qd:64 ~bytes:4096 ~duration:(Time.ms 100) () (fun r ->
      result := Some r);
  ignore (Sim.run sim);
  match !result with
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "single thread %.0fK in [110K,150K]" (r.Fio.iops /. 1e3))
      true
      (r.Fio.iops > 110e3 && r.Fio.iops < 150e3)
  | None -> Alcotest.fail "fio did not finish"

(* ------------------------------------------------------------------ *)
(* FlashX / RocksDB                                                   *)
(* ------------------------------------------------------------------ *)

let test_flashx_benchmarks_complete () =
  List.iter
    (fun bench ->
      let sim = Sim.create () in
      let path = local_path sim in
      let done_ = ref false in
      Flashx.run sim path bench (fun ~elapsed ->
          done_ := true;
          Alcotest.(check bool)
            (bench.Flashx.name ^ " took real time")
            true
            Time.(elapsed > Time.ms 10));
      ignore (Sim.run sim);
      Alcotest.(check bool) (bench.Flashx.name ^ " completed") true !done_)
    Flashx.all

let test_rocksdb_benchmarks_complete () =
  List.iter
    (fun bench ->
      let sim = Sim.create () in
      let path = local_path sim in
      let done_ = ref false in
      Rocksdb.run sim path bench (fun ~elapsed ->
          done_ := true;
          Alcotest.(check bool)
            (bench.Rocksdb.name ^ " took real time")
            true
            Time.(elapsed > Time.ms 10));
      ignore (Sim.run sim);
      Alcotest.(check bool) (bench.Rocksdb.name ^ " completed") true !done_)
    Rocksdb.all

let test_bfs_latency_sensitive () =
  (* BFS must slow down more than WCC when per-IO latency rises — the
     qualitative contrast behind Figure 7b. *)
  let elapsed_on bench path_of =
    let sim = Sim.create () in
    let path = path_of sim in
    let e = ref Time.zero in
    Flashx.run sim path bench (fun ~elapsed -> e := elapsed);
    ignore (Sim.run sim);
    Time.to_float_ms !e
  in
  let slow bench =
    let sim_local = elapsed_on bench local_path in
    let remote sim =
      (* iSCSI-flavoured slow path: higher per-IO latency and a 70K cap. *)
      let fabric = Reflex_net.Fabric.create sim () in
      let server =
        Reflex_baselines.Baseline_server.create sim ~fabric
          ~kind:Reflex_baselines.Baseline_server.Iscsi ~n_threads:1 ()
      in
      let path = ref None in
      Access_path.remote sim fabric
        ~server_host:(Reflex_baselines.Baseline_server.host server)
        ~accept:(Reflex_baselines.Baseline_server.accept server)
        ~n_contexts:3 ~tenant:1 ()
        (fun p -> path := Some p);
      ignore (Sim.run sim);
      Option.get !path
    in
    elapsed_on bench remote /. sim_local
  in
  let wcc = slow Flashx.wcc and bfs = slow Flashx.bfs in
  Alcotest.(check bool)
    (Printf.sprintf "BFS slowdown %.2f > WCC %.2f" bfs wcc)
    true (bfs > wcc)

let suite =
  [
    ( "access_path",
      [
        Alcotest.test_case "local submit" `Quick test_access_path_local;
        Alcotest.test_case "remote submit" `Quick test_access_path_remote;
      ] );
    ( "workload",
      [
        Alcotest.test_case "serial phase latency-bound" `Quick
          test_workload_serial_phase_latency_bound;
        Alcotest.test_case "parallel phase demand-bound" `Quick
          test_workload_parallel_phase_demand_bound;
        Alcotest.test_case "phases run sequentially" `Quick test_workload_phases_sequential;
        Alcotest.test_case "window throttles" `Quick test_workload_window_throttles;
      ] );
    ( "fio",
      [
        Alcotest.test_case "reports consistent results" `Quick test_fio_reports_throughput;
        Alcotest.test_case "per-thread CPU cap ~140K" `Quick test_fio_thread_cpu_cap;
      ] );
    ( "flashx",
      [
        Alcotest.test_case "all benchmarks complete" `Slow test_flashx_benchmarks_complete;
        Alcotest.test_case "BFS more latency-sensitive than WCC" `Slow test_bfs_latency_sensitive;
      ] );
    ( "rocksdb",
      [ Alcotest.test_case "all benchmarks complete" `Slow test_rocksdb_benchmarks_complete ] );
  ]
