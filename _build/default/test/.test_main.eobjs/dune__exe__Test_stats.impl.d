test/test_stats.ml: Alcotest Array Gen Hdr_histogram Int64 Linear_fit List Meter Printf Prng QCheck QCheck_alcotest Reflex_engine Reflex_stats Reservoir Sim String Summary Table Time
