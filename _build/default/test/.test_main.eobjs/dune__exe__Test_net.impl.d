test/test_net.ml: Alcotest Fabric List Printf Prng Reflex_engine Reflex_net Sim Stack_model Tcp_conn Time
