test/test_main.ml: Alcotest List Test_apps Test_core Test_engine Test_experiments Test_flash Test_net Test_proto Test_qos Test_stats
