test/test_apps.ml: Access_path Alcotest Fio Flashx Io_op List Option Printf Reflex_apps Reflex_baselines Reflex_core Reflex_engine Reflex_flash Reflex_net Rocksdb Sim Time Workload
