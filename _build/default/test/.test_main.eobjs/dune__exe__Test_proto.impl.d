test/test_proto.ml: Alcotest Bytes Codec Format Framer Gen Int64 List Message QCheck QCheck_alcotest Reflex_proto
