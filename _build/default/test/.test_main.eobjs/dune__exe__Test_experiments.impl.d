test/test_experiments.ml: Ablations Alcotest Common Fig5 Fig6 Fun List Load_gen Printf Reflex_client Reflex_engine Reflex_experiments Reflex_stats Runner Sim String Table2 Time
