test/test_experiments.ml: Ablations Alcotest Fig5 Fig6 List Printf Reflex_experiments String Table2
