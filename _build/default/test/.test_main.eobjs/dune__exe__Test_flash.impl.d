test/test_flash.ml: Alcotest Calibrate Device_profile Io_op List Nvme_model Printf Prng Queue_pair Reflex_engine Reflex_flash Reflex_stats Reservoir Sim Time
