test/test_engine.ml: Alcotest Array Gc Gen Heap Int64 List Printf Prng QCheck QCheck_alcotest Reflex_engine Resource Sim Time Weak
