(* Tests for the QoS machinery: SLOs, cost model, token accounting and the
   Algorithm-1 scheduler. *)

open Reflex_engine
open Reflex_flash
open Reflex_qos

(* ------------------------------------------------------------------ *)
(* Slo                                                                *)
(* ------------------------------------------------------------------ *)

let test_slo_constructors () =
  let lc = Slo.latency_critical ~latency_us:500 ~iops:50_000.0 ~read_pct:80 in
  Alcotest.(check bool) "lc" true (Slo.is_latency_critical lc);
  Alcotest.(check (float 1e-9)) "read ratio" 0.8 (Slo.read_ratio lc);
  let be = Slo.best_effort ~read_pct:25 () in
  Alcotest.(check bool) "be" false (Slo.is_latency_critical be);
  Alcotest.check_raises "bad read_pct" (Invalid_argument "Slo: read_pct must be in 0..100")
    (fun () -> ignore (Slo.latency_critical ~latency_us:500 ~iops:1.0 ~read_pct:101));
  Alcotest.check_raises "bad iops"
    (Invalid_argument "Slo.latency_critical: non-positive IOPS") (fun () ->
      ignore (Slo.latency_critical ~latency_us:500 ~iops:0.0 ~read_pct:50))

(* ------------------------------------------------------------------ *)
(* Cost_model                                                         *)
(* ------------------------------------------------------------------ *)

let model_a = Cost_model.of_profile Device_profile.device_a

let test_cost_basic () =
  Alcotest.(check (float 1e-9)) "4KB mixed read = 1 token" 1.0
    (Cost_model.request_cost model_a ~kind:Io_op.Read ~bytes:4096 ~read_only:false);
  Alcotest.(check (float 1e-9)) "4KB RO read = 1/2 token" 0.5
    (Cost_model.request_cost model_a ~kind:Io_op.Read ~bytes:4096 ~read_only:true);
  Alcotest.(check (float 1e-9)) "4KB write = 10 tokens" 10.0
    (Cost_model.request_cost model_a ~kind:Io_op.Write ~bytes:4096 ~read_only:false);
  (* Paper: a 32KB request costs as much as 8 back-to-back 4KB requests. *)
  Alcotest.(check (float 1e-9)) "32KB read = 8 tokens" 8.0
    (Cost_model.request_cost model_a ~kind:Io_op.Read ~bytes:32768 ~read_only:false);
  (* Cost is constant for requests 4KB and smaller. *)
  Alcotest.(check (float 1e-9)) "1KB read = 1 token" 1.0
    (Cost_model.request_cost model_a ~kind:Io_op.Read ~bytes:1024 ~read_only:false)

let test_weighted_rate_paper_example () =
  (* Paper SS3.2.2: 100K IOPS at 80% reads, write cost 10
     -> 0.8*100K*1 + 0.2*100K*10 = 280K tokens/s. *)
  Alcotest.(check (float 1.0)) "280K tokens/s" 280_000.0
    (Cost_model.weighted_rate model_a ~iops:100_000.0 ~read_ratio:0.8);
  (* Scenario 1, tenant B: 70K IOPS at 80% reads -> 196K tokens/s. *)
  Alcotest.(check (float 1.0)) "196K tokens/s" 196_000.0
    (Cost_model.weighted_rate model_a ~iops:70_000.0 ~read_ratio:0.8)

let test_cost_of_fitted () =
  let fitted =
    { Calibrate.write_cost = 9.5; ro_read_cost = 0.52; token_rate = 5e5; fit_r2 = 0.99 }
  in
  let m = Cost_model.of_fitted fitted in
  Alcotest.(check (float 1e-9)) "write cost carried" 9.5
    (Cost_model.request_cost m ~kind:Io_op.Write ~bytes:4096 ~read_only:false)

(* ------------------------------------------------------------------ *)
(* Global_bucket                                                      *)
(* ------------------------------------------------------------------ *)

let test_bucket_add_take () =
  let b = Global_bucket.create ~n_threads:1 in
  Global_bucket.add b 10.0;
  Alcotest.(check (float 1e-9)) "level" 10.0 (Global_bucket.level b);
  Alcotest.(check (float 1e-9)) "partial take" 4.0 (Global_bucket.try_take b 4.0);
  Alcotest.(check (float 1e-9)) "take beyond level" 6.0 (Global_bucket.try_take b 100.0);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Global_bucket.try_take b 1.0);
  Global_bucket.add b (-5.0);
  Alcotest.(check (float 1e-9)) "negative add ignored" 0.0 (Global_bucket.level b)

let test_bucket_reset_last_thread () =
  let b = Global_bucket.create ~n_threads:3 in
  Global_bucket.add b 100.0;
  Alcotest.(check bool) "thread 0 marks" false (Global_bucket.mark_round b ~thread_id:0);
  Alcotest.(check bool) "thread 2 marks" false (Global_bucket.mark_round b ~thread_id:2);
  Alcotest.(check (float 1e-9)) "not reset yet" 100.0 (Global_bucket.level b);
  Alcotest.(check bool) "last thread resets" true (Global_bucket.mark_round b ~thread_id:1);
  Alcotest.(check (float 1e-9)) "reset to zero" 0.0 (Global_bucket.level b);
  Alcotest.(check int) "reset counted" 1 (Global_bucket.resets b);
  (* Marks clear after a reset: a full new round is needed. *)
  Global_bucket.add b 5.0;
  Alcotest.(check bool) "fresh round" false (Global_bucket.mark_round b ~thread_id:0);
  Alcotest.(check (float 1e-9)) "still there" 5.0 (Global_bucket.level b)

(* ------------------------------------------------------------------ *)
(* Tenant                                                             *)
(* ------------------------------------------------------------------ *)

let lc_slo = Slo.latency_critical ~latency_us:500 ~iops:100_000.0 ~read_pct:80

let test_tenant_queue () =
  let t = Tenant.create ~id:1 ~slo:lc_slo ~token_rate:280_000.0 in
  Alcotest.(check (float 1e-9)) "no demand" 0.0 (Tenant.demand t);
  Tenant.enqueue t ~cost:1.0 "a";
  Tenant.enqueue t ~cost:10.0 "b";
  Alcotest.(check (float 1e-9)) "demand sums costs" 11.0 (Tenant.demand t);
  Alcotest.(check (option (float 1e-9))) "peek" (Some 1.0) (Tenant.peek_cost t);
  (match Tenant.dequeue t with
  | Some (c, v) ->
    Alcotest.(check (float 1e-9)) "fifo cost" 1.0 c;
    Alcotest.(check string) "fifo value" "a" v
  | None -> Alcotest.fail "dequeue");
  Alcotest.(check (float 1e-9)) "demand shrinks" 10.0 (Tenant.demand t);
  Alcotest.(check int) "length" 1 (Tenant.queue_length t)

let test_tenant_pos_limit_window () =
  let t = Tenant.create ~id:1 ~slo:lc_slo ~token_rate:1.0 in
  Tenant.record_grant t 10.0;
  Tenant.record_grant t 20.0;
  Tenant.record_grant t 30.0;
  Alcotest.(check (float 1e-9)) "3-round sum" 60.0 (Tenant.pos_limit t);
  Tenant.record_grant t 40.0;
  (* Oldest (10) falls out of the window. *)
  Alcotest.(check (float 1e-9)) "sliding window" 90.0 (Tenant.pos_limit t)

let test_tenant_tokens () =
  let t = Tenant.create ~id:1 ~slo:lc_slo ~token_rate:1.0 in
  Tenant.add_tokens t 5.0;
  Tenant.spend_tokens t 7.0;
  Alcotest.(check (float 1e-9)) "can go negative" (-2.0) (Tenant.tokens t);
  Tenant.add_tokens t 3.0;
  Alcotest.(check (float 1e-9)) "drain" 1.0 (Tenant.drain_tokens t);
  Alcotest.(check (float 1e-9)) "drained" 0.0 (Tenant.tokens t)

(* ------------------------------------------------------------------ *)
(* Scheduler (Algorithm 1)                                            *)
(* ------------------------------------------------------------------ *)

(* Drive [rounds] scheduling rounds at [round_us] spacing; before each
   round, [feed round_idx sched] may enqueue requests.  Returns the list
   of submissions in order. *)
let run_rounds ?(rounds = 100) ?(round_us = 100) sched ~feed =
  let out = ref [] in
  for i = 0 to rounds - 1 do
    feed i sched;
    let now = Time.us ((i + 1) * round_us) in
    ignore (Scheduler.schedule sched ~now ~submit:(fun s -> out := s :: !out))
  done;
  List.rev !out

let new_sched ?neg_limit ?notify ?(n_threads = 1) ?(thread_id = 0) () =
  let global = Global_bucket.create ~n_threads in
  let sched =
    Scheduler.create ?neg_limit ~global ~thread_id ?notify_control_plane:notify ()
  in
  (global, sched)

let count_for id subs =
  List.length (List.filter (fun s -> s.Scheduler.tenant_id = id) subs)

let test_lc_within_slo_all_submitted () =
  (* An LC tenant issuing exactly its reserved rate gets everything
     through: 100 rounds x 100us, rate 280K tokens/s = 28 tokens/round;
     feed 20 x 1-token reads per round. *)
  let _, sched = new_sched () in
  Scheduler.add_tenant sched (Tenant.create ~id:1 ~slo:lc_slo ~token_rate:280_000.0);
  let subs =
    run_rounds sched ~feed:(fun _ s ->
        for _ = 1 to 20 do
          Scheduler.enqueue s ~tenant_id:1 ~cost:1.0 ()
        done)
  in
  Alcotest.(check int) "all requests submitted" 2000 (List.length subs);
  Alcotest.(check (float 1e-6)) "no backlog" 0.0 (Scheduler.backlog sched)

let test_lc_rate_limited_at_neg_limit () =
  (* An LC tenant demanding far beyond its reservation is throttled to
     roughly its token rate (plus the bounded NEG_LIMIT burst). *)
  let notified = ref 0 in
  let _, sched = new_sched ~notify:(fun _ -> incr notified) () in
  (* 10K tokens/s = 1 token/round at 100us rounds. *)
  Scheduler.add_tenant sched
    (Tenant.create ~id:1
       ~slo:(Slo.latency_critical ~latency_us:500 ~iops:10_000.0 ~read_pct:100)
       ~token_rate:10_000.0);
  let subs =
    run_rounds sched ~feed:(fun _ s ->
        for _ = 1 to 20 do
          Scheduler.enqueue s ~tenant_id:1 ~cost:3.0 ()
        done)
  in
  (* Generated: 99 rounds x 1 token (the first round generates none as
     there is no prior timestamp), plus the 50-token deficit allowance:
     ~149 tokens for 3-token requests -> ~50 submissions. *)
  let n = List.length subs in
  Alcotest.(check bool) (Printf.sprintf "throttled (%d in [45,60])" n) true (n >= 45 && n <= 60);
  Alcotest.(check bool) "control plane notified of deficit" true (!notified > 0)

let test_lc_writes_cost_more () =
  (* With write cost 10, an 80%-read LC tenant fed uniformly needs its
     weighted rate; at half that rate only about half the requests go. *)
  let _, sched = new_sched () in
  Scheduler.add_tenant sched (Tenant.create ~id:1 ~slo:lc_slo ~token_rate:140_000.0);
  let subs =
    run_rounds sched ~feed:(fun _ s ->
        (* 28 tokens of demand per round: 20 reads + 2 writes at 10. *)
        for _ = 1 to 16 do
          Scheduler.enqueue s ~tenant_id:1 ~cost:1.0 ()
        done;
        Scheduler.enqueue s ~tenant_id:1 ~cost:10.0 ();
        Scheduler.enqueue s ~tenant_id:1 ~cost:10.0 ())
  in
  (* 14 tokens/round generated vs 36 demanded: ~40% served. *)
  let served = float_of_int (List.length subs) /. 1800.0 in
  Alcotest.(check bool)
    (Printf.sprintf "served fraction %.2f in [0.3,0.5]" served)
    true
    (served > 0.3 && served < 0.5)

let test_lc_spare_tokens_donated () =
  (* An idle LC tenant's accumulating balance must overflow into the
     global bucket once past POS_LIMIT (90% donation). *)
  let global, sched = new_sched () in
  Scheduler.add_tenant sched (Tenant.create ~id:1 ~slo:lc_slo ~token_rate:280_000.0);
  ignore (Scheduler.schedule sched ~now:(Time.us 100) ~submit:(fun _ -> ()));
  ignore (Scheduler.schedule sched ~now:(Time.us 200) ~submit:(fun _ -> ()));
  (* Bucket resets every round with one thread, so check inside a round:
     generate a large grant then look before the next mark... instead use
     two threads so this thread's marks never reset alone. *)
  ignore global;
  let global2 = Global_bucket.create ~n_threads:2 in
  let sched2 = Scheduler.create ~global:global2 ~thread_id:0 () in
  Scheduler.add_tenant sched2 (Tenant.create ~id:1 ~slo:lc_slo ~token_rate:280_000.0);
  for i = 1 to 10 do
    ignore (Scheduler.schedule sched2 ~now:(Time.us (i * 100)) ~submit:(fun _ -> ()))
  done;
  (* 9 grants of 28 tokens with no demand: balance capped near POS_LIMIT
     (3 rounds' grants = 84), the rest donated. *)
  Alcotest.(check bool)
    (Printf.sprintf "donations in bucket (%.1f > 50)" (Global_bucket.level global2))
    true
    (Global_bucket.level global2 > 50.0)

let test_be_fair_sharing () =
  (* Two BE tenants with equal rates and saturating demand split service
     evenly. *)
  let _, sched = new_sched () in
  let be_slo = Slo.best_effort () in
  Scheduler.add_tenant sched (Tenant.create ~id:1 ~slo:be_slo ~token_rate:50_000.0);
  Scheduler.add_tenant sched (Tenant.create ~id:2 ~slo:be_slo ~token_rate:50_000.0);
  let subs =
    run_rounds sched ~feed:(fun _ s ->
        for _ = 1 to 20 do
          Scheduler.enqueue s ~tenant_id:1 ~cost:1.0 ();
          Scheduler.enqueue s ~tenant_id:2 ~cost:1.0 ()
        done)
  in
  let c1 = count_for 1 subs and c2 = count_for 2 subs in
  Alcotest.(check bool)
    (Printf.sprintf "even split (%d vs %d)" c1 c2)
    true
    (abs (c1 - c2) <= c1 / 20);
  (* 5 tokens/round each -> ~500 submissions each. *)
  Alcotest.(check bool) "rate respected" true (c1 <= 550 && c1 >= 450)

let test_be_no_burst_after_idle () =
  (* DRR rule: a BE tenant idle for many rounds must not accumulate
     tokens and burst later. *)
  let _, sched = new_sched () in
  Scheduler.add_tenant sched
    (Tenant.create ~id:1 ~slo:(Slo.best_effort ()) ~token_rate:100_000.0);
  (* 50 idle rounds (10 tokens/round generated, all flushed), then heavy
     demand: the first busy round may spend only that round's grant. *)
  let subs =
    run_rounds ~rounds:51 sched ~feed:(fun i s ->
        if i = 50 then
          for _ = 1 to 1000 do
            Scheduler.enqueue s ~tenant_id:1 ~cost:1.0 ()
          done)
  in
  let n = List.length subs in
  Alcotest.(check bool)
    (Printf.sprintf "no post-idle burst (%d <= 12)" n)
    true (n <= 12)

let test_be_claims_lc_leftovers () =
  (* Work conservation: an idle LC tenant's tokens flow via the global
     bucket to a BE tenant with zero own rate. *)
  let global = Global_bucket.create ~n_threads:2 (* avoid same-round reset *) in
  let sched = Scheduler.create ~global ~thread_id:0 () in
  Scheduler.add_tenant sched (Tenant.create ~id:1 ~slo:lc_slo ~token_rate:280_000.0);
  Scheduler.add_tenant sched (Tenant.create ~id:2 ~slo:(Slo.best_effort ()) ~token_rate:0.0);
  let subs =
    run_rounds sched ~feed:(fun _ s ->
        for _ = 1 to 40 do
          Scheduler.enqueue s ~tenant_id:2 ~cost:1.0 ()
        done)
  in
  let c2 = count_for 2 subs in
  (* LC generates 28/round and donates 90% once above POS_LIMIT; BE should
     capture a large share of ~2770 generated tokens. *)
  Alcotest.(check bool) (Printf.sprintf "BE served from donations (%d > 1500)" c2) true (c2 > 1500)

let test_be_round_robin_rotates () =
  (* With a single token/round in the bucket, the BE that gets it must
     rotate across rounds. *)
  let global = Global_bucket.create ~n_threads:2 in
  let sched = Scheduler.create ~global ~thread_id:0 () in
  Scheduler.add_tenant sched (Tenant.create ~id:1 ~slo:(Slo.best_effort ()) ~token_rate:0.0);
  Scheduler.add_tenant sched (Tenant.create ~id:2 ~slo:(Slo.best_effort ()) ~token_rate:0.0);
  let winners = ref [] in
  for i = 1 to 10 do
    Global_bucket.add global 1.0;
    (if Scheduler.find_tenant sched 1 <> None then
       match Scheduler.find_tenant sched 1 with
       | Some t1 when Tenant.demand t1 = 0.0 -> Scheduler.enqueue sched ~tenant_id:1 ~cost:1.0 1
       | _ -> ());
    (match Scheduler.find_tenant sched 2 with
    | Some t2 when Tenant.demand t2 = 0.0 -> Scheduler.enqueue sched ~tenant_id:2 ~cost:1.0 2
    | _ -> ());
    ignore
      (Scheduler.schedule sched ~now:(Time.us (i * 100))
         ~submit:(fun s -> winners := s.Scheduler.tenant_id :: !winners))
  done;
  let w1 = List.length (List.filter (( = ) 1) !winners) in
  let w2 = List.length (List.filter (( = ) 2) !winners) in
  Alcotest.(check bool)
    (Printf.sprintf "both win some (%d vs %d)" w1 w2)
    true
    (w1 >= 3 && w2 >= 3)

let test_multi_thread_token_exchange () =
  (* Spare LC tokens on thread 0 serve BE demand on thread 1 — the
     cross-thread sharing of SS4.1. *)
  let global = Global_bucket.create ~n_threads:2 in
  let sched0 = Scheduler.create ~global ~thread_id:0 () in
  let sched1 = Scheduler.create ~global ~thread_id:1 () in
  Scheduler.add_tenant sched0 (Tenant.create ~id:1 ~slo:lc_slo ~token_rate:280_000.0);
  Scheduler.add_tenant sched1 (Tenant.create ~id:2 ~slo:(Slo.best_effort ()) ~token_rate:0.0);
  let be_count = ref 0 in
  for i = 1 to 100 do
    for _ = 1 to 40 do
      Scheduler.enqueue sched1 ~tenant_id:2 ~cost:1.0 ()
    done;
    ignore (Scheduler.schedule sched0 ~now:(Time.us (i * 100)) ~submit:(fun _ -> ()));
    ignore
      (Scheduler.schedule sched1 ~now:(Time.us (i * 100)) ~submit:(fun _ -> incr be_count))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "cross-thread donations consumed (%d > 1000)" !be_count)
    true (!be_count > 1000);
  Alcotest.(check bool) "bucket reset happened" true (Global_bucket.resets global > 10)

let test_remove_tenant () =
  let _, sched = new_sched () in
  Scheduler.add_tenant sched (Tenant.create ~id:1 ~slo:lc_slo ~token_rate:1000.0);
  Scheduler.add_tenant sched (Tenant.create ~id:2 ~slo:(Slo.best_effort ()) ~token_rate:0.0);
  Alcotest.(check int) "two tenants" 2 (Scheduler.tenant_count sched);
  Scheduler.remove_tenant sched 1;
  Alcotest.(check int) "one left" 1 (Scheduler.tenant_count sched);
  Alcotest.(check bool) "gone" true (Scheduler.find_tenant sched 1 = None);
  Alcotest.check_raises "enqueue to removed tenant" Not_found (fun () ->
      Scheduler.enqueue sched ~tenant_id:1 ~cost:1.0 ())

let test_remove_tenant_preserves_order_and_cursor () =
  (* Remove BE tenants from the middle of a rotating set: the compaction
     must preserve insertion order and the cursor must stay within the
     shrunk set so round-robin service continues over the survivors. *)
  let global = Global_bucket.create ~n_threads:2 in
  let sched = Scheduler.create ~global ~thread_id:0 () in
  for id = 1 to 5 do
    Scheduler.add_tenant sched (Tenant.create ~id ~slo:(Slo.best_effort ()) ~token_rate:0.0)
  done;
  (* Advance the cursor near the end of the set... *)
  for i = 1 to 4 do
    ignore (Scheduler.schedule sched ~now:(Time.us (i * 100)) ~submit:(fun _ -> ()))
  done;
  (* ...then shrink the set below it. *)
  Scheduler.remove_tenant sched 3;
  Scheduler.remove_tenant sched 5;
  Scheduler.remove_tenant sched 1;
  Alcotest.(check (list int)) "order preserved" [ 2; 4 ]
    (List.map Tenant.id (Scheduler.tenants sched));
  (* Survivors still rotate: with one token per round, both must win. *)
  let winners = ref [] in
  for i = 5 to 14 do
    Global_bucket.add global 1.0;
    List.iter
      (fun id ->
        match Scheduler.find_tenant sched id with
        | Some t when Tenant.demand t = 0.0 -> Scheduler.enqueue sched ~tenant_id:id ~cost:1.0 ()
        | _ -> ())
      [ 2; 4 ];
    ignore
      (Scheduler.schedule sched ~now:(Time.us (i * 100))
         ~submit:(fun s -> winners := s.Scheduler.tenant_id :: !winners))
  done;
  let w2 = List.length (List.filter (( = ) 2) !winners) in
  let w4 = List.length (List.filter (( = ) 4) !winners) in
  Alcotest.(check bool)
    (Printf.sprintf "round-robin over survivors (%d vs %d)" w2 w4)
    true
    (w2 >= 3 && w4 >= 3);
  (* Removing everything resets cleanly; unknown ids are a no-op. *)
  Scheduler.remove_tenant sched 2;
  Scheduler.remove_tenant sched 4;
  Scheduler.remove_tenant sched 99;
  Alcotest.(check int) "empty" 0 (Scheduler.tenant_count sched);
  ignore (Scheduler.schedule sched ~now:(Time.us 10_000) ~submit:(fun _ -> ()))

let recomputed_backlog sched =
  List.fold_left (fun acc t -> acc +. Tenant.demand t) 0.0 (Scheduler.tenants sched)

let test_backlog_aggregate_tracks_demand () =
  let _, sched = new_sched () in
  Scheduler.add_tenant sched (Tenant.create ~id:1 ~slo:lc_slo ~token_rate:280_000.0);
  Scheduler.add_tenant sched (Tenant.create ~id:2 ~slo:(Slo.best_effort ()) ~token_rate:0.0);
  let check msg =
    Alcotest.(check (float 1e-6)) msg (recomputed_backlog sched) (Scheduler.backlog sched)
  in
  check "empty";
  Scheduler.enqueue sched ~tenant_id:1 ~cost:1.0 ();
  Scheduler.enqueue sched ~tenant_id:2 ~cost:10.0 ();
  check "after enqueues";
  Alcotest.(check (float 1e-6)) "sums costs" 11.0 (Scheduler.backlog sched);
  (* Detach-style direct drain, bypassing the scheduler: the demand
     listener keeps the aggregate honest. *)
  (match Scheduler.find_tenant sched 2 with
  | Some t -> ignore (Tenant.dequeue t)
  | None -> Alcotest.fail "tenant 2 missing");
  check "after direct dequeue";
  ignore (Scheduler.schedule sched ~now:(Time.us 100) ~submit:(fun _ -> ()));
  ignore (Scheduler.schedule sched ~now:(Time.us 200) ~submit:(fun _ -> ()));
  check "after scheduling rounds";
  Scheduler.enqueue sched ~tenant_id:1 ~cost:2.5 ();
  Scheduler.remove_tenant sched 1;
  check "after removing a tenant with queued demand";
  Alcotest.(check (float 1e-6)) "zero once queues empty" 0.0 (Scheduler.backlog sched)

(* The O(1) aggregate equals the recomputed sum under any interleaving of
   enqueues, direct drains, scheduling rounds, removals and re-adds. *)
let prop_backlog_aggregate_consistent =
  QCheck.Test.make ~name:"backlog aggregate matches recomputed demand" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 80) (pair (int_range 0 5) (int_range 1 3)))
    (fun ops ->
      let global = Global_bucket.create ~n_threads:2 in
      let sched = Scheduler.create ~global ~thread_id:0 () in
      let slo_of id = if id = 3 then Slo.best_effort () else lc_slo in
      for id = 1 to 3 do
        Scheduler.add_tenant sched (Tenant.create ~id ~slo:(slo_of id) ~token_rate:50_000.0)
      done;
      let round = ref 0 in
      List.iter
        (fun (op, id) ->
          match op with
          | 0 | 1 -> (
            try Scheduler.enqueue sched ~tenant_id:id ~cost:(float_of_int (op + 1)) ()
            with Not_found -> ())
          | 2 -> (
            match Scheduler.find_tenant sched id with
            | Some t -> ignore (Tenant.dequeue t)
            | None -> ())
          | 3 ->
            incr round;
            ignore (Scheduler.schedule sched ~now:(Time.us (!round * 100)) ~submit:(fun _ -> ()))
          | 4 -> Scheduler.remove_tenant sched id
          | _ ->
            if Scheduler.find_tenant sched id = None then
              Scheduler.add_tenant sched (Tenant.create ~id ~slo:(slo_of id) ~token_rate:50_000.0))
        ops;
      abs_float (Scheduler.backlog sched -. recomputed_backlog sched) < 1e-6)

(* Token conservation: across any demand pattern, the total cost submitted
   never exceeds tokens generated (LC rates + BE rates) plus the bounded
   LC deficit allowance. *)
let prop_token_conservation =
  QCheck.Test.make ~name:"scheduler never oversubmits generated tokens" ~count:60
    QCheck.(
      pair
        (pair (int_range 1 40) (int_range 1 40)) (* lc rate, be rate in tokens/round *)
        (list_of_size Gen.(int_range 1 60) (pair (int_range 0 30) (int_range 0 30))))
    (fun ((lc_rate, be_rate), demands) ->
      let global = Global_bucket.create ~n_threads:2 in
      let sched = Scheduler.create ~global ~thread_id:0 () in
      (* Rates are per 100us round: tokens/s = per-round * 10_000. *)
      let lc =
        Tenant.create ~id:1
          ~slo:(Slo.latency_critical ~latency_us:500 ~iops:1000.0 ~read_pct:100)
          ~token_rate:(float_of_int lc_rate *. 10_000.0)
      in
      let be =
        Tenant.create ~id:2 ~slo:(Slo.best_effort ()) ~token_rate:(float_of_int be_rate *. 10_000.0)
      in
      Scheduler.add_tenant sched lc;
      Scheduler.add_tenant sched be;
      let submitted = ref 0.0 in
      List.iteri
        (fun i (d_lc, d_be) ->
          for _ = 1 to d_lc do
            Scheduler.enqueue sched ~tenant_id:1 ~cost:1.0 ()
          done;
          for _ = 1 to d_be do
            Scheduler.enqueue sched ~tenant_id:2 ~cost:1.0 ()
          done;
          ignore
            (Scheduler.schedule sched
               ~now:(Time.us ((i + 1) * 100))
               ~submit:(fun s -> submitted := !submitted +. s.Scheduler.cost)))
        demands;
      let rounds = float_of_int (List.length demands - 1) in
      let generated = rounds *. float_of_int (lc_rate + be_rate) in
      (* +50 for the LC deficit allowance, +epsilon for float slack. *)
      !submitted <= generated +. 50.0 +. 1e-6)

(* BE tenants may never drive their balance negative. *)
let prop_be_never_negative =
  QCheck.Test.make ~name:"BE token balance never goes negative" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 20))
    (fun demands ->
      let global = Global_bucket.create ~n_threads:1 in
      let sched = Scheduler.create ~global ~thread_id:0 () in
      let be = Tenant.create ~id:1 ~slo:(Slo.best_effort ()) ~token_rate:30_000.0 in
      Scheduler.add_tenant sched be;
      List.for_all
        (fun _ -> true)
        [ () ]
      &&
      (List.iteri
         (fun i d ->
           for _ = 1 to d do
             Scheduler.enqueue sched ~tenant_id:1 ~cost:2.5 ()
           done;
           ignore (Scheduler.schedule sched ~now:(Time.us ((i + 1) * 100)) ~submit:(fun _ -> ()));
           if Tenant.tokens be < -1e9 then failwith "unreachable")
         demands;
       Tenant.tokens be >= 0.0))

(* Per-tenant FIFO: the scheduler may interleave tenants, but one
   tenant's requests are always submitted in arrival order. *)
let prop_per_tenant_fifo =
  QCheck.Test.make ~name:"scheduler preserves per-tenant FIFO order" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_range 1 3) (int_range 1 5)))
    (fun batches ->
      let global = Global_bucket.create ~n_threads:1 in
      let sched = Scheduler.create ~global ~thread_id:0 () in
      for id = 1 to 3 do
        Scheduler.add_tenant sched
          (Tenant.create ~id
             ~slo:(Slo.latency_critical ~latency_us:500 ~iops:1000.0 ~read_pct:100)
             ~token_rate:200_000.0)
      done;
      let seq = ref 0 in
      let out = Hashtbl.create 3 in
      List.iteri
        (fun round (tenant_id, n) ->
          for _ = 1 to n do
            incr seq;
            Scheduler.enqueue sched ~tenant_id ~cost:1.0 !seq
          done;
          ignore
            (Scheduler.schedule sched
               ~now:(Time.us ((round + 1) * 100))
               ~submit:(fun s ->
                 let prev =
                   Option.value (Hashtbl.find_opt out s.Scheduler.tenant_id) ~default:[]
                 in
                 Hashtbl.replace out s.Scheduler.tenant_id (s.Scheduler.payload :: prev))))
        batches;
      Hashtbl.fold
        (fun _ submitted ok ->
          let in_order l = List.sort compare l = l in
          ok && in_order (List.rev submitted))
        out true)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ("slo", [ Alcotest.test_case "constructors" `Quick test_slo_constructors ]);
    ( "cost_model",
      [
        Alcotest.test_case "basic costs" `Quick test_cost_basic;
        Alcotest.test_case "weighted rate (paper example)" `Quick test_weighted_rate_paper_example;
        Alcotest.test_case "from calibration" `Quick test_cost_of_fitted;
      ] );
    ( "global_bucket",
      [
        Alcotest.test_case "add/take" `Quick test_bucket_add_take;
        Alcotest.test_case "last thread resets" `Quick test_bucket_reset_last_thread;
      ] );
    ( "tenant",
      [
        Alcotest.test_case "queue accounting" `Quick test_tenant_queue;
        Alcotest.test_case "POS_LIMIT window" `Quick test_tenant_pos_limit_window;
        Alcotest.test_case "token balance" `Quick test_tenant_tokens;
      ] );
    ( "scheduler",
      [
        Alcotest.test_case "LC within SLO fully served" `Quick test_lc_within_slo_all_submitted;
        Alcotest.test_case "LC throttled at NEG_LIMIT" `Quick test_lc_rate_limited_at_neg_limit;
        Alcotest.test_case "writes consume 10x tokens" `Quick test_lc_writes_cost_more;
        Alcotest.test_case "LC spare tokens donated" `Quick test_lc_spare_tokens_donated;
        Alcotest.test_case "BE fair sharing" `Quick test_be_fair_sharing;
        Alcotest.test_case "BE no burst after idle (DRR)" `Quick test_be_no_burst_after_idle;
        Alcotest.test_case "BE claims LC leftovers" `Quick test_be_claims_lc_leftovers;
        Alcotest.test_case "BE round-robin rotates" `Quick test_be_round_robin_rotates;
        Alcotest.test_case "cross-thread token exchange" `Quick test_multi_thread_token_exchange;
        Alcotest.test_case "tenant removal" `Quick test_remove_tenant;
        Alcotest.test_case "removal preserves order & cursor" `Quick
          test_remove_tenant_preserves_order_and_cursor;
        Alcotest.test_case "backlog aggregate tracks demand" `Quick
          test_backlog_aggregate_tracks_demand;
        qcheck prop_token_conservation;
        qcheck prop_be_never_negative;
        qcheck prop_per_tenant_fifo;
        qcheck prop_backlog_aggregate_consistent;
      ] );
  ]
