(* Tests for the network substrate. *)

open Reflex_engine
open Reflex_net

let make_fabric ?(bandwidth_gbps = 10.0) () =
  let sim = Sim.create () in
  let fabric = Fabric.create sim ~bandwidth_gbps () in
  (sim, fabric)

(* ------------------------------------------------------------------ *)
(* Stack_model                                                        *)
(* ------------------------------------------------------------------ *)

let test_stack_presets () =
  Alcotest.(check bool) "ix polls" true Stack_model.ix_client.Stack_model.polling;
  Alcotest.(check bool) "linux does not poll" false Stack_model.linux_client.Stack_model.polling;
  Alcotest.(check bool) "linux coalesces 20us" true
    (Time.equal Stack_model.linux_client.Stack_model.coalesce (Time.us 20));
  Alcotest.(check bool) "linux TCP ~70K msgs/thread" true
    (Stack_model.linux_client.Stack_model.max_msgs_per_sec = 70e3);
  Alcotest.(check bool) "iscsi slowest" true
    Time.(
      Stack_model.iscsi_server.Stack_model.rx_overhead
      > Stack_model.linux_server.Stack_model.rx_overhead)

let test_stack_delays () =
  let prng = Prng.create 1L in
  let sum_ix = ref Time.zero and sum_linux = ref Time.zero in
  for _ = 1 to 1000 do
    sum_ix := Time.add !sum_ix (Stack_model.rx_delay Stack_model.ix_client prng);
    sum_linux := Time.add !sum_linux (Stack_model.rx_delay Stack_model.linux_client prng)
  done;
  let mean_ix = Time.to_float_us !sum_ix /. 1000.0 in
  let mean_linux = Time.to_float_us !sum_linux /. 1000.0 in
  (* IX: fixed 1.5us. Linux: 4 + U(0,20) + exp(8) ~ 22us on average. *)
  Alcotest.(check (float 0.01)) "ix rx fixed" 1.5 mean_ix;
  Alcotest.(check bool)
    (Printf.sprintf "linux rx mean %.1f in [18,26]" mean_linux)
    true
    (mean_linux > 18.0 && mean_linux < 26.0)

(* ------------------------------------------------------------------ *)
(* Fabric                                                             *)
(* ------------------------------------------------------------------ *)

let test_serialization_time () =
  let _, fabric = make_fabric () in
  (* 4096 B at 10 Gb/s = 3276.8 ns *)
  let t = Fabric.serialization_time fabric ~bytes:4096 in
  Alcotest.(check int64) "4KB at 10GbE" 3277L t

let test_transmit_latency () =
  let sim, fabric = make_fabric () in
  let a = Fabric.add_host fabric ~name:"a" ~stack:Stack_model.ix_client in
  let b = Fabric.add_host fabric ~name:"b" ~stack:Stack_model.ix_client in
  let arrival = ref Time.zero in
  Fabric.transmit fabric ~src:a ~dst:b ~bytes:4096 (fun () -> arrival := Sim.now sim);
  ignore (Sim.run sim);
  (* 2 x 3.28us serialization + 2 x 0.7 NIC + 1.2 switch + 1.5 rx stack ~ 10.3us *)
  let us = Time.to_float_us !arrival in
  Alcotest.(check bool) (Printf.sprintf "one-way %.2fus in [9,12]" us) true (us > 9.0 && us < 12.0)

let test_bandwidth_cap () =
  let sim, fabric = make_fabric () in
  let a = Fabric.add_host fabric ~name:"a" ~stack:Stack_model.ix_client in
  let b = Fabric.add_host fabric ~name:"b" ~stack:Stack_model.ix_client in
  let delivered = ref 0 in
  (* Offer 600K x 4KB/s for 100ms = 2.4GB/s >> 1.25GB/s line rate. *)
  let n = 60_000 in
  for i = 0 to n - 1 do
    ignore
      (Sim.at sim (Time.of_float_ns (float_of_int i *. 1666.0)) (fun () ->
           Fabric.transmit fabric ~src:a ~dst:b ~bytes:4096 (fun () -> incr delivered)))
  done;
  ignore (Sim.run ~until:(Time.ms 100) sim);
  let rate_mbs = float_of_int (!delivered * 4096) /. 0.1 /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f MB/s ~ line rate" rate_mbs)
    true
    (rate_mbs > 1_100.0 && rate_mbs < 1_300.0)

let test_byte_accounting () =
  let sim, fabric = make_fabric () in
  let a = Fabric.add_host fabric ~name:"a" ~stack:Stack_model.ix_client in
  let b = Fabric.add_host fabric ~name:"b" ~stack:Stack_model.ix_client in
  Fabric.transmit fabric ~src:a ~dst:b ~bytes:1000 (fun () -> ());
  Fabric.transmit fabric ~src:a ~dst:b ~bytes:2000 (fun () -> ());
  ignore (Sim.run sim);
  Alcotest.(check int) "sent" 3000 (Fabric.bytes_sent a);
  Alcotest.(check int) "received" 3000 (Fabric.bytes_received b);
  Alcotest.(check string) "name" "a" (Fabric.host_name a)

(* ------------------------------------------------------------------ *)
(* Tcp_conn                                                           *)
(* ------------------------------------------------------------------ *)

let test_conn_roundtrip () =
  let sim, fabric = make_fabric () in
  let client = Fabric.add_host fabric ~name:"client" ~stack:Stack_model.ix_client in
  let server = Fabric.add_host fabric ~name:"server" ~stack:Stack_model.dataplane_server in
  let conn = Tcp_conn.connect fabric ~client ~server in
  let rtt = ref Time.zero in
  Tcp_conn.set_server_handler conn (fun msg ~size:_ ->
      Alcotest.(check string) "request content" "ping" msg;
      Tcp_conn.send_to_client conn ~size:4124 "pong");
  Tcp_conn.set_client_handler conn (fun msg ~size ->
      Alcotest.(check string) "response content" "pong" msg;
      Alcotest.(check int) "response size" 4124 size;
      rtt := Sim.now sim);
  Tcp_conn.send_to_server conn ~size:28 "ping";
  ignore (Sim.run sim);
  let us = Time.to_float_us !rtt in
  (* small request + 4KB response between polling endpoints: ~15-25us *)
  Alcotest.(check bool) (Printf.sprintf "RTT %.1fus plausible" us) true (us > 10.0 && us < 30.0);
  Alcotest.(check int) "counters" 1 (Tcp_conn.delivered_to_server conn);
  Alcotest.(check int) "counters" 1 (Tcp_conn.delivered_to_client conn)

let test_conn_fifo_under_jitter () =
  (* Linux receive jitter (coalescing + wakeups) must not reorder a
     connection's byte stream. *)
  let sim, fabric = make_fabric () in
  let client = Fabric.add_host fabric ~name:"client" ~stack:Stack_model.linux_client in
  let server = Fabric.add_host fabric ~name:"server" ~stack:Stack_model.linux_server in
  let conn = Tcp_conn.connect fabric ~client ~server in
  let received = ref [] in
  Tcp_conn.set_server_handler conn (fun msg ~size:_ -> received := msg :: !received);
  let n = 500 in
  for i = 1 to n do
    ignore
      (Sim.at sim (Time.of_float_us (float_of_int i *. 0.9)) (fun () ->
           Tcp_conn.send_to_server conn ~size:64 i))
  done;
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "in-order delivery" (List.init n (fun i -> i + 1))
    (List.rev !received)

let test_conn_handler_installed_late () =
  let sim, fabric = make_fabric () in
  let client = Fabric.add_host fabric ~name:"c" ~stack:Stack_model.ix_client in
  let server = Fabric.add_host fabric ~name:"s" ~stack:Stack_model.ix_client in
  let conn = Tcp_conn.connect fabric ~client ~server in
  Tcp_conn.send_to_server conn ~size:28 "early";
  ignore (Sim.run sim);
  let got = ref None in
  Tcp_conn.set_server_handler conn (fun msg ~size:_ -> got := Some msg);
  Alcotest.(check (option string)) "queued message replayed" (Some "early") !got

let test_linux_slower_than_ix () =
  (* One-way delivery time: Linux receiver should be slower on average
     than an IX receiver (interrupt coalescing + wakeup). *)
  let one_way stack =
    let sim, fabric = make_fabric () in
    let a = Fabric.add_host fabric ~name:"a" ~stack:Stack_model.ix_client in
    let b = Fabric.add_host fabric ~name:"b" ~stack in
    let sum = ref 0.0 and n = 200 in
    for i = 0 to n - 1 do
      ignore
        (Sim.at sim (Time.us (i * 100)) (fun () ->
             let sent = Sim.now sim in
             Fabric.transmit fabric ~src:a ~dst:b ~bytes:4096 (fun () ->
                 sum := !sum +. Time.to_float_us (Time.diff (Sim.now sim) sent))))
    done;
    ignore (Sim.run sim);
    !sum /. float_of_int n
  in
  let ix = one_way Stack_model.ix_client in
  let linux = one_way Stack_model.linux_client in
  Alcotest.(check bool)
    (Printf.sprintf "linux %.1fus > ix %.1fus + 10" linux ix)
    true
    (linux > ix +. 10.0)

let suite =
  [
    ( "stack_model",
      [
        Alcotest.test_case "presets" `Quick test_stack_presets;
        Alcotest.test_case "delay distributions" `Quick test_stack_delays;
      ] );
    ( "fabric",
      [
        Alcotest.test_case "serialization time" `Quick test_serialization_time;
        Alcotest.test_case "one-way latency" `Quick test_transmit_latency;
        Alcotest.test_case "10GbE bandwidth cap" `Quick test_bandwidth_cap;
        Alcotest.test_case "byte accounting" `Quick test_byte_accounting;
      ] );
    ( "tcp_conn",
      [
        Alcotest.test_case "request/response roundtrip" `Quick test_conn_roundtrip;
        Alcotest.test_case "FIFO under receive jitter" `Quick test_conn_fifo_under_jitter;
        Alcotest.test_case "late handler replays queue" `Quick test_conn_handler_installed_late;
        Alcotest.test_case "linux receiver slower than ix" `Quick test_linux_slower_than_ix;
      ] );
  ]
