(* Smoke test for the benchmark harness plumbing: drives a tiny sweep
   through the parallel experiment runner (as `bench/main.exe --jobs N`
   does for the real figures) and checks the fan-out/merge produces the
   same table as a serial run.  Wired into `dune runtest` via the
   `bench-smoke` alias so harness regressions surface without paying for
   a full figure reproduction. *)

open Reflex_engine
open Reflex_client
open Reflex_experiments

let point rate =
  let w = Common.make_reflex () in
  let sim = w.Common.sim in
  let client = Common.client_of w ~tenant:1 () in
  let until = Time.add (Sim.now sim) (Time.ms 60) in
  let gen =
    Load_gen.open_loop sim ~client ~rate ~read_ratio:1.0 ~bytes:4096 ~until ~seed:3L ()
  in
  Common.measure_generators sim [ gen ] ~warmup:(Time.ms 10) ~window:(Time.ms 40);
  (rate, Load_gen.achieved_iops gen /. 1e3, Load_gen.p95_read_us gen)

let table rows =
  let t =
    Reflex_stats.Table.create ~title:"bench smoke: tiny open-loop sweep"
      ~columns:[ "offered KIOPS"; "achieved KIOPS"; "p95 (us)" ]
  in
  List.iter
    (fun (rate, kiops, p95) ->
      Reflex_stats.Table.add_row t
        [
          Reflex_stats.Table.cell_f (rate /. 1e3);
          Reflex_stats.Table.cell_f ~decimals:6 kiops;
          Reflex_stats.Table.cell_f ~decimals:6 p95;
        ])
    rows;
  Reflex_stats.Table.render t

let () =
  let rates = [ 40e3; 80e3; 120e3; 160e3 ] in
  let t0 = Unix.gettimeofday () in
  let parallel = table (Runner.map ~jobs:2 point rates) in
  let serial = table (Runner.map ~jobs:1 point rates) in
  print_string parallel;
  Printf.printf "[bench smoke: %d points through the parallel runner in %.1fs]\n"
    (List.length rates)
    (Unix.gettimeofday () -. t0);
  if String.equal parallel serial then print_endline "bench smoke OK: parallel == serial"
  else begin
    print_endline "bench smoke FAILED: parallel and serial tables differ";
    print_string serial;
    exit 1
  end
