(* Unit and property tests for the DES kernel. *)

open Reflex_engine

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time                                                               *)
(* ------------------------------------------------------------------ *)

let test_time_constructors () =
  Alcotest.(check int64) "us" 1_000L (Time.us 1);
  Alcotest.(check int64) "ms" 1_000_000L (Time.ms 1);
  Alcotest.(check int64) "sec" 1_000_000_000L (Time.sec 1);
  Alcotest.(check int64) "of_float_us rounds" 1_500L (Time.of_float_us 1.5);
  check_float "to_float_us" 2.5 (Time.to_float_us 2_500L)

let test_time_arith () =
  Alcotest.(check int64) "add" 30L (Time.add 10L 20L);
  Alcotest.(check int64) "sub" 10L (Time.sub 30L 20L);
  Alcotest.(check int64) "scale" 15L (Time.scale 10L 1.5);
  Alcotest.(check bool) "lt" true Time.(5L < 6L);
  Alcotest.(check bool) "ge" true Time.(6L >= 6L);
  Alcotest.(check int64) "max" 6L (Time.max 5L 6L);
  Alcotest.(check int64) "min" 5L (Time.min 5L 6L)

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Time.to_string (Time.ns 500));
  Alcotest.(check string) "us" "12.00us" (Time.to_string (Time.us 12));
  Alcotest.(check string) "ms" "3.00ms" (Time.to_string (Time.ms 3))

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 42L in
  let c = Prng.split a in
  let x = Prng.bits64 a and y = Prng.bits64 c in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal x y))

let test_prng_float_range () =
  let p = Prng.create 7L in
  for _ = 1 to 10_000 do
    let x = Prng.float p in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_exponential_mean () =
  let p = Prng.create 11L in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential p ~mean:50.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f close to 50" mean)
    true
    (abs_float (mean -. 50.0) < 1.0)

let test_prng_normal_moments () =
  let p = Prng.create 13L in
  let n = 200_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.normal p ~mean:10.0 ~stddev:3.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~10" true (abs_float (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev ~3" true (abs_float (sqrt var -. 3.0) < 0.1)

let test_prng_zipf_skew () =
  let p = Prng.create 17L in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let i = Prng.zipf p ~n:100 ~theta:0.99 in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 10 > rank 90" true (counts.(10) > counts.(90))

let test_prng_bool_bias () =
  let p = Prng.create 19L in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Prng.bool p 0.25 then incr hits
  done;
  let frac = float_of_int !hits /. 100_000.0 in
  Alcotest.(check bool) "p=0.25 respected" true (abs_float (frac -. 0.25) < 0.01)

let prop_prng_int_bounds =
  QCheck.Test.make ~name:"Prng.int in [0,n)" ~count:1000
    QCheck.(pair int64 (int_range 1 10_000))
    (fun (seed, n) ->
      let p = Prng.create seed in
      let x = Prng.int p n in
      x >= 0 && x < n)

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:30L ~seq:0 "c";
  Heap.push h ~time:10L ~seq:1 "a";
  Heap.push h ~time:20L ~seq:2 "b";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:5L ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, v) -> Alcotest.(check int) "FIFO at equal time" i v
    | None -> Alcotest.fail "empty"
  done

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (int_range 0 1_000_000))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i x -> Heap.push h ~time:(Int64.of_int x) ~seq:i ()) times;
      let rec drain acc =
        match Heap.pop h with
        | Some (t, _, ()) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let sorted = List.sort Int64.compare (List.map Int64.of_int times) in
      popped = sorted)

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.at sim (Time.us 30) (fun () -> log := 3 :: !log));
  ignore (Sim.at sim (Time.us 10) (fun () -> log := 1 :: !log));
  ignore (Sim.at sim (Time.us 20) (fun () -> log := 2 :: !log));
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "events in time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" (Time.us 30) (Sim.now sim)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.at sim (Time.us 10) (fun () -> fired := true) in
  Sim.cancel sim ev;
  ignore (Sim.run sim);
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.at sim (Time.us i) (fun () -> incr count))
  done;
  ignore (Sim.run ~until:(Time.us 5) sim);
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check int) "pending remain" 5 (Sim.pending sim);
  ignore (Sim.run sim);
  Alcotest.(check int) "rest run" 10 !count

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.at sim (Time.us 10) (fun () ->
         log := "outer" :: !log;
         ignore (Sim.after sim (Time.us 5) (fun () -> log := "inner" :: !log))));
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int64) "clock" (Time.us 15) (Sim.now sim)

let test_sim_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.at sim (Time.us 10) (fun () -> ()));
  ignore (Sim.run sim);
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Sim.at: scheduling in the past (5.00us < 10.00us)") (fun () ->
      ignore (Sim.at sim (Time.us 5) (fun () -> ())))

let test_sim_every () =
  let sim = Sim.create () in
  let ticks = ref [] in
  Sim.every sim ~every:(Time.us 10) ~until:(Time.us 45) (fun t -> ticks := t :: !ticks);
  ignore (Sim.run sim);
  Alcotest.(check (list int64))
    "periodic ticks"
    [ Time.us 10; Time.us 20; Time.us 30; Time.us 40 ]
    (List.rev !ticks)

let test_sim_run_advances_clock_to_until () =
  let sim = Sim.create () in
  ignore (Sim.at sim (Time.us 1) (fun () -> ()));
  ignore (Sim.run ~until:(Time.ms 1) sim);
  Alcotest.(check int64) "clock hits until" (Time.ms 1) (Sim.now sim)

(* ------------------------------------------------------------------ *)
(* Resource                                                           *)
(* ------------------------------------------------------------------ *)

let test_resource_single_server_fifo () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  let finishes = ref [] in
  for i = 1 to 3 do
    Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished ->
        finishes := (i, finished) :: !finishes)
  done;
  ignore (Sim.run sim);
  let expected = [ (1, Time.us 10); (2, Time.us 20); (3, Time.us 30) ] in
  Alcotest.(check (list (pair int int64))) "sequential service" expected (List.rev !finishes)

let test_resource_parallel_servers () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:2 in
  let finishes = ref [] in
  for i = 1 to 4 do
    Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished ->
        finishes := (i, finished) :: !finishes)
  done;
  ignore (Sim.run sim);
  let expected =
    [ (1, Time.us 10); (2, Time.us 10); (3, Time.us 20); (4, Time.us 20) ]
  in
  Alcotest.(check (list (pair int int64))) "two at a time" expected (List.rev !finishes)

let test_resource_priority () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  let order = ref [] in
  (* Occupy the server, then enqueue low before high: high must win. *)
  Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished:_ ->
      order := "first" :: !order);
  Resource.submit r ~priority:Resource.Low ~service:(Time.us 10)
    (fun ~started:_ ~finished:_ -> order := "low" :: !order);
  Resource.submit r ~priority:Resource.High ~service:(Time.us 10)
    (fun ~started:_ ~finished:_ -> order := "high" :: !order);
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "high preempts queue" [ "first"; "high"; "low" ]
    (List.rev !order)

let test_resource_nonpreemptive () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  let high_started = ref Time.zero in
  Resource.submit r ~priority:Resource.Low ~service:(Time.ms 5)
    (fun ~started:_ ~finished:_ -> ());
  ignore
    (Sim.at sim (Time.us 1) (fun () ->
         Resource.submit r ~priority:Resource.High ~service:(Time.us 1)
           (fun ~started ~finished:_ -> high_started := started)));
  ignore (Sim.run sim);
  Alcotest.(check int64) "high waits behind in-service low" (Time.ms 5) !high_started

let test_resource_utilization () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  Resource.submit r ~service:(Time.us 50) (fun ~started:_ ~finished:_ -> ());
  ignore (Sim.run ~until:(Time.us 100) sim);
  Alcotest.(check bool) "50% busy" true (abs_float (Resource.utilization r -. 0.5) < 1e-6);
  Alcotest.(check int) "completed" 1 (Resource.completed r)

let test_resource_queue_depth_visibility () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished:_ -> ());
  Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished:_ -> ());
  Resource.submit r ~priority:Resource.Low ~service:(Time.us 10)
    (fun ~started:_ ~finished:_ -> ());
  Alcotest.(check int) "one busy" 1 (Resource.busy r);
  Alcotest.(check (pair int int)) "queues" (1, 1) (Resource.queued r);
  ignore (Sim.run sim)

let prop_resource_conserves_jobs =
  QCheck.Test.make ~name:"resource completes every submitted job" ~count:100
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 1 50) (int_range 1 1000)))
    (fun (servers, services) ->
      let sim = Sim.create () in
      let r = Resource.create sim ~servers in
      let done_ = ref 0 in
      List.iter
        (fun s ->
          Resource.submit r ~service:(Time.ns s) (fun ~started:_ ~finished:_ -> incr done_))
        services;
      ignore (Sim.run sim);
      !done_ = List.length services && Resource.completed r = List.length services)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "time",
      [
        Alcotest.test_case "constructors" `Quick test_time_constructors;
        Alcotest.test_case "arithmetic" `Quick test_time_arith;
        Alcotest.test_case "pretty-print" `Quick test_time_pp;
      ] );
    ( "prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        Alcotest.test_case "float in range" `Quick test_prng_float_range;
        Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
        Alcotest.test_case "normal moments" `Quick test_prng_normal_moments;
        Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
        Alcotest.test_case "bernoulli bias" `Quick test_prng_bool_bias;
        qcheck prop_prng_int_bounds;
      ] );
    ( "heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_ordering;
        Alcotest.test_case "FIFO on ties" `Quick test_heap_fifo_ties;
        qcheck prop_heap_sorts;
      ] );
    ( "sim",
      [
        Alcotest.test_case "event ordering" `Quick test_sim_ordering;
        Alcotest.test_case "cancel" `Quick test_sim_cancel;
        Alcotest.test_case "run until" `Quick test_sim_until;
        Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
        Alcotest.test_case "past scheduling raises" `Quick test_sim_past_raises;
        Alcotest.test_case "periodic every" `Quick test_sim_every;
        Alcotest.test_case "clock advances to until" `Quick test_sim_run_advances_clock_to_until;
      ] );
    ( "resource",
      [
        Alcotest.test_case "single-server FIFO" `Quick test_resource_single_server_fifo;
        Alcotest.test_case "parallel servers" `Quick test_resource_parallel_servers;
        Alcotest.test_case "priority dispatch" `Quick test_resource_priority;
        Alcotest.test_case "non-preemptive" `Quick test_resource_nonpreemptive;
        Alcotest.test_case "utilization accounting" `Quick test_resource_utilization;
        Alcotest.test_case "queue visibility" `Quick test_resource_queue_depth_visibility;
        qcheck prop_resource_conserves_jobs;
      ] );
  ]
