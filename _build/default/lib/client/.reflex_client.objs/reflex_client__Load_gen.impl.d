lib/client/load_gen.ml: Client_lib Float Hdr_histogram Int64 Message Prng Reflex_engine Reflex_proto Reflex_stats Sim Time
