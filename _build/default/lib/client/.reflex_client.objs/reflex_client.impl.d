lib/client/reflex_client.ml: Blk_dev Client_lib Load_gen
