lib/client/load_gen.mli: Client_lib Hdr_histogram Reflex_engine Reflex_stats Sim Time
