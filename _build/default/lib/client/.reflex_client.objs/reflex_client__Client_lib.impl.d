lib/client/client_lib.ml: Codec Fabric Hashtbl Int64 Message Reflex_engine Reflex_net Reflex_proto Resource Sim Stack_model Tcp_conn Time
