lib/client/client_lib.mli: Fabric Message Reflex_engine Reflex_net Reflex_proto Sim Stack_model Tcp_conn Time
