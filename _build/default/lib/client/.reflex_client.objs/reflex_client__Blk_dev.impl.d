lib/client/blk_dev.ml: Array Client_lib Fabric Int64 Io_op Message Reflex_engine Reflex_flash Reflex_net Reflex_proto Sim Stack_model Time
