lib/client/blk_dev.mli: Io_op Reflex_engine Reflex_flash Reflex_net Reflex_proto Sim Time
