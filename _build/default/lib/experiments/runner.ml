(* Domain-pool fan-out for independent sweep points.

   Design notes:
   - Work distribution is a single shared [Atomic] index: domains pull
     the next un-started point until the list is exhausted.  Points vary
     wildly in cost (a fig6b point simulates 10,000 tenants; a table2 row
     is a qd-1 probe), so dynamic pulling beats static chunking.
   - Results land in a per-index slot, then are read back in order: the
     merged output is byte-identical to the serial run.  Each point owns
     a fresh [Sim.t] and world; nothing mutable is shared across points,
     which is what makes this safe (see DESIGN.md).
   - The calling domain is worker number zero, so [jobs = 1] spawns no
     domains at all and [jobs = n] uses exactly [n - 1] spawns.
   - On exception: the first failure is recorded, every worker stops
     pulling new points, all domains are joined, then the exception is
     re-raised with its backtrace on the caller. *)

let default = Atomic.make (Domain.recommended_domain_count ())

let recommended_jobs () = Domain.recommended_domain_count ()
let default_jobs () = Atomic.get default
let set_default_jobs n = Atomic.set default (max 1 n)

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min jobs n in
  if jobs <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f items.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
      done
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false (* unreachable: no failure *)) results)
  end

let concat_map ?jobs f xs = List.concat (map ?jobs f xs)
