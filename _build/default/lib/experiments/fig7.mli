(** Figure 7: legacy Linux applications over the remote block device.

    - 7a: FIO 4KB random-read latency-throughput curves for local NVMe,
      iSCSI, and the ReFlex block driver (which saturates the 10GbE link;
      iSCSI tops out ~4x lower with ~2x the latency).
    - 7b: FlashX graph analytics (WCC / PageRank / BFS / SCC) end-to-end
      slowdown versus local Flash.
    - 7c: RocksDB db_bench (bulkload / randomread / readwhilewriting)
      slowdown versus local Flash. *)

type fio_row = {
  fpath : string;
  threads : int;
  qd : int;
  mbps : float;
  p95_us : float;
}

type app_row = {
  apath : string;  (** "iSCSI" | "ReFlex" *)
  bench : string;
  elapsed_ms : float;
  local_ms : float;
  slowdown : float;
}

val run_fio : ?mode:Common.mode -> unit -> fio_row list
val run_flashx : ?mode:Common.mode -> unit -> app_row list
val run_rocksdb : ?mode:Common.mode -> unit -> app_row list

val fio_table : fio_row list -> Reflex_stats.Table.t
val flashx_table : app_row list -> Reflex_stats.Table.t
val rocksdb_table : app_row list -> Reflex_stats.Table.t
