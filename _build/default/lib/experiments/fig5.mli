(** Figure 5: performance isolation with the QoS scheduler.

    Four tenants share one ReFlex server on device A.  A and B are
    latency-critical (95th-percentile read latency of 500us; A reserves
    120K IOPS of 100%% reads, B 70K IOPS at 80%% reads); C and D are
    best-effort (95%% and 25%% reads).  Scenario 1 drives A and B at their
    full reservations; Scenario 2 has B issue only 45K IOPS, freeing
    tokens for the best-effort tenants.  Each scenario runs with the I/O
    scheduler disabled and enabled. *)

type row = {
  scenario : int;
  sched : bool;
  tenant : string;
  p95_read_us : float;
  achieved_kiops : float;
  slo_kiops : float option;  (** LC reservation, for reference *)
}

val run : ?mode:Common.mode -> unit -> row list
val to_table : row list -> Reflex_stats.Table.t
