(** Figure 4: p95 latency versus throughput for 1KB read-only requests —
    local SPDK, ReFlex, and the libaio server, each with 1 and 2 server
    threads.  Headline: ReFlex serves ~850K IOPS on one core and
    saturates the 1M-IOPS device with two, while the libaio server manages
    ~75K IOPS per core. *)

type row = {
  system : string;  (** "Local" | "ReFlex" | "Libaio" *)
  threads : int;
  offered_kiops : float;
  achieved_kiops : float;
  p95_us : float;
}

val run : ?mode:Common.mode -> unit -> row list
val to_table : row list -> Reflex_stats.Table.t
