(** Figure 6: scalability in cores, tenants and connections.

    - 6a: 1..12 cores, one LC tenant per core (20K IOPS, 90%% reads, 2ms
      p95) plus two best-effort tenants; LC throughput must scale
      linearly while the token usage rate stays pinned at the device's
      2ms-SLO ceiling.
    - 6b: thousands of tenants, each one connection issuing 100 1KB-read
      IOPS, against 1/2/4-core servers; a core manages ~2.5K tenants.
    - 6c: one tenant with thousands of TCP connections on one core at
      100/500/1000 IOPS per connection; connection state overflows the
      LLC past ~5K connections. *)

type core_row = {
  cores : int;
  lc_kiops : float;
  be_kiops : float;
  ktokens_per_sec : float;
  lc_p95_worst_us : float;
}

type tenant_row = {
  server_cores : int;
  tenants : int;
  achieved_kiops : float;
  p95_us : float;
}

type conn_row = {
  iops_per_conn : int;
  conns : int;
  achieved_kiops : float;
  p95c_us : float;
}

val run_cores : ?mode:Common.mode -> unit -> core_row list
val run_tenants : ?mode:Common.mode -> unit -> tenant_row list
val run_conns : ?mode:Common.mode -> unit -> conn_row list

val cores_table : core_row list -> Reflex_stats.Table.t
val tenants_table : tenant_row list -> Reflex_stats.Table.t
val conns_table : conn_row list -> Reflex_stats.Table.t
