(** Ablation studies for the design choices the paper sets empirically
    (§3.2.2) or argues for qualitatively:

    - {b NEG_LIMIT} (paper: -50 tokens): the burst allowance that lets an
      LC tenant absorb short-term arrival noise.  Too shallow and a bursty
      LC tenant queues behind its own rate limiter; too deep and its
      bursts of expensive writes leak into co-tenants' tails.
    - {b donation fraction} (paper: 90%% above POS_LIMIT): how much of an
      idle LC tenant's balance flows to best-effort tenants.  Smaller
      fractions strand tokens and break work conservation.
    - {b adaptive batching cap} (paper: 64): trade-off between per-request
      CPU amortization (throughput) and queueing (tail latency).
    - {b request cost model}: what Figure 5 looks like if writes are
      priced like reads (C(write) = 1) — the scheduler admits ~10x too
      much write work and LC tails blow through their SLOs. *)

type neg_limit_row = {
  neg_limit : float;
  bursty_lc_p95_us : float;  (** Poisson LC tenant at its reservation *)
  victim_lc_p95_us : float;  (** co-located smooth LC tenant *)
}

type donation_row = {
  fraction : float;
  be_kiops : float;  (** best-effort throughput from donated tokens *)
}

type batch_row = {
  batch_cap : int;
  achieved_kiops : float;
  p95_us : float;
}

type cost_model_row = {
  config : string;  (** "calibrated (10 tokens/write)" | "naive (1)" *)
  lc_p95_us : float;
  lc_slo_met : bool;
  be_write_kiops : float;
}

val run_neg_limit : ?mode:Common.mode -> unit -> neg_limit_row list
val run_donation : ?mode:Common.mode -> unit -> donation_row list
val run_batching : ?mode:Common.mode -> unit -> batch_row list
val run_cost_model : ?mode:Common.mode -> unit -> cost_model_row list

val neg_limit_table : neg_limit_row list -> Reflex_stats.Table.t
val donation_table : donation_row list -> Reflex_stats.Table.t
val batching_table : batch_row list -> Reflex_stats.Table.t
val cost_model_table : cost_model_row list -> Reflex_stats.Table.t
