lib/experiments/fig1.mli: Common Reflex_stats
