lib/experiments/fig5.ml: Common List Load_gen Reflex_client Reflex_engine Reflex_stats Runner Sim Table Time
