lib/experiments/fig3.ml: Calibrate Common Device_profile Io_op List Reflex_engine Reflex_flash Reflex_qos Reflex_stats Runner Table Time
