lib/experiments/fig5.mli: Common Reflex_stats
