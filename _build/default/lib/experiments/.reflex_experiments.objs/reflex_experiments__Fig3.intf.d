lib/experiments/fig3.mli: Common Reflex_stats
