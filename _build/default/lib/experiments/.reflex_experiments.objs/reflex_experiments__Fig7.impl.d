lib/experiments/fig7.ml: Access_path Common Fio Flashx List Reflex_apps Reflex_baselines Reflex_core Reflex_engine Reflex_net Reflex_stats Rocksdb Runner Sim Table Time
