lib/experiments/runner.mli:
