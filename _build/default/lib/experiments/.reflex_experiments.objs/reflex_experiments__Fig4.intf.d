lib/experiments/fig4.mli: Common Reflex_stats
