lib/experiments/fig1.ml: Calibrate Common Device_profile List Reflex_engine Reflex_flash Reflex_stats Runner Table Time
