lib/experiments/table2.mli: Common Reflex_stats
