lib/experiments/table2.ml: Common Hdr_histogram List Load_gen Printf Reflex_baselines Reflex_client Reflex_engine Reflex_flash Reflex_net Reflex_stats Runner Sim Stack_model Table Time
