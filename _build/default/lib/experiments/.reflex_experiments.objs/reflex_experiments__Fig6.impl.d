lib/experiments/fig6.ml: Array Client_lib Common Fabric Float Hdr_histogram Int64 List Load_gen Printf Reflex_client Reflex_core Reflex_engine Reflex_net Reflex_stats Sim Stack_model Table Time
