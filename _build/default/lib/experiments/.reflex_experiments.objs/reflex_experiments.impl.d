lib/experiments/reflex_experiments.ml: Ablations Common Fig1 Fig3 Fig4 Fig5 Fig6 Fig7 Runner Table2
