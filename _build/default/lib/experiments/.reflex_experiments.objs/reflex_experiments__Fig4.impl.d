lib/experiments/fig4.ml: Common Float Int64 List Load_gen Prng Reflex_baselines Reflex_client Reflex_engine Reflex_flash Reflex_net Reflex_stats Runner Sim Stack_model Table Time
