lib/experiments/common.ml: Client_lib Fabric List Load_gen Message Reflex_baselines Reflex_client Reflex_core Reflex_engine Reflex_net Reflex_proto Sim Stack_model Time
