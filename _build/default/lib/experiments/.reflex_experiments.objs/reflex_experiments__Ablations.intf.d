lib/experiments/ablations.mli: Common Reflex_stats
