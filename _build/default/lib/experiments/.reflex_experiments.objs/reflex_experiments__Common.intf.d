lib/experiments/common.mli: Client_lib Fabric Load_gen Reflex_baselines Reflex_client Reflex_core Reflex_engine Reflex_flash Reflex_net Reflex_proto Sim Stack_model Time
