lib/experiments/runner.ml: Array Atomic Domain List Printexc
