lib/experiments/ablations.ml: Common Float Int64 List Load_gen Reflex_client Reflex_core Reflex_engine Reflex_net Reflex_qos Reflex_stats Runner Sim Table Time
