lib/experiments/fig6.mli: Common Reflex_stats
