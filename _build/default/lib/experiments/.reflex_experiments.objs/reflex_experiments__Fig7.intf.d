lib/experiments/fig7.mli: Common Reflex_stats
