(** Figure 1: p95 read latency versus total IOPS on device A for 4KB
    requests at read ratios 100/99/95/90/75/50%% — the read/write
    interference characterization that motivates the QoS scheduler. *)

type row = {
  read_pct : int;
  offered_iops : float;
  achieved_iops : float;
  p95_read_us : float;
}

val run : ?mode:Common.mode -> unit -> row list
val to_table : row list -> Reflex_stats.Table.t
