(** Table 2: unloaded latency of 4KB random reads and writes at queue
    depth 1, across the six access paths the paper compares:
    local SPDK, iSCSI, libaio (Linux and IX clients), and ReFlex (Linux
    and IX clients). *)

type row = {
  path : string;
  read_avg_us : float;
  read_p95_us : float;
  write_avg_us : float;
  write_p95_us : float;
}

(** Paper-reported values for side-by-side comparison. *)
val paper : row list

val run : ?mode:Common.mode -> unit -> row list
val to_table : row list -> Reflex_stats.Table.t
