(** Figure 3: request cost models for devices A, B and C — p95 read
    latency versus weighted tokens/s for several read ratios and request
    sizes, plus the calibration fit (write cost, read-only read cost)
    that the QoS scheduler consumes. *)

type point = {
  device : string;
  label : string;  (** e.g. "100%rd (4KB)" *)
  weighted_ktokens : float;
  p95_read_us : float;
}

type fit_row = {
  fdevice : string;
  write_cost : float;  (** paper: 10 / 20 / 16 *)
  ro_read_cost : float;
  token_rate_at_1ms : float;
  r2 : float;
}

val run : ?mode:Common.mode -> unit -> point list * fit_row list
val to_tables : point list * fit_row list -> Reflex_stats.Table.t list
