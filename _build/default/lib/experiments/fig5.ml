open Reflex_engine
open Reflex_client
open Reflex_stats

type row = {
  scenario : int;
  sched : bool;
  tenant : string;
  p95_read_us : float;
  achieved_kiops : float;
  slo_kiops : float option;
}

let scenario ~mode ~scenario:sc ~sched =
  let w = Common.make_reflex ~qos:sched () in
  let sim = w.Common.sim in
  (* Tenants A and B: latency-critical. *)
  let a = Common.client_of w ~slo:(Common.lc_slo ~latency_us:500 ~iops:120_000 ~read_pct:100) ~tenant:1 () in
  let b = Common.client_of w ~slo:(Common.lc_slo ~latency_us:500 ~iops:70_000 ~read_pct:80) ~tenant:2 () in
  (* Tenants C and D: best-effort with different read mixes. *)
  let c = Common.client_of w ~slo:(Common.be_slo ~read_pct:95 ()) ~tenant:3 () in
  let d = Common.client_of w ~slo:(Common.be_slo ~read_pct:25 ()) ~tenant:4 () in
  let until = Time.add (Sim.now sim) (Time.sec 10) in
  let b_rate = if sc = 1 then 70_000.0 else 45_000.0 in
  let gen_a =
    Load_gen.open_loop sim ~client:a ~pacing:`Cbr ~rate:120_000.0 ~read_ratio:1.0 ~bytes:4096
      ~until ~seed:11L ()
  in
  let gen_b =
    Load_gen.open_loop sim ~client:b ~pacing:`Cbr ~mix:`Deterministic ~rate:b_rate
      ~read_ratio:0.8 ~bytes:4096 ~until ~seed:12L ()
  in
  (* Best-effort tenants keep a deep queue outstanding — they take
     whatever throughput they are allowed. *)
  let gen_c =
    Load_gen.closed_loop sim ~client:c ~depth:256 ~read_ratio:0.95 ~bytes:4096 ~until ~seed:13L ()
  in
  let gen_d =
    Load_gen.closed_loop sim ~client:d ~depth:256 ~read_ratio:0.25 ~bytes:4096 ~until ~seed:14L ()
  in
  let gens = [ gen_a; gen_b; gen_c; gen_d ] in
  Common.measure_generators sim gens ~warmup:(Time.ms 100) ~window:(Common.window mode);
  let mk tenant gen slo_kiops =
    {
      scenario = sc;
      sched;
      tenant;
      p95_read_us = Load_gen.p95_read_us gen;
      achieved_kiops = Load_gen.achieved_iops gen /. 1e3;
      slo_kiops;
    }
  in
  [
    mk "A (LC 100%r)" gen_a (Some 120.0);
    mk "B (LC 80%r)" gen_b (Some (b_rate /. 1e3));
    mk "C (BE 95%r)" gen_c None;
    mk "D (BE 25%r)" gen_d None;
  ]

let run ?(mode = Common.Quick) () =
  (* Four independent worlds (scenario x scheduler on/off): fan out. *)
  Runner.concat_map
    (fun (sc, sched) -> scenario ~mode ~scenario:sc ~sched)
    [ (1, false); (1, true); (2, false); (2, true) ]

let to_table rows =
  let t =
    Table.create
      ~title:
        "Figure 5: tenant isolation (A/B latency-critical @500us p95; C/D best-effort)"
      ~columns:[ "scenario"; "sched"; "tenant"; "p95 read (us)"; "KIOPS"; "reserved KIOPS" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_i r.scenario;
          (if r.sched then "on" else "off");
          r.tenant;
          Table.cell_f r.p95_read_us;
          Table.cell_f r.achieved_kiops;
          (match r.slo_kiops with Some s -> Table.cell_f s | None -> "-");
        ])
    rows;
  t
