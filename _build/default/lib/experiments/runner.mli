(** Multicore fan-out for the experiment harness.

    Every sweep point of the paper's evaluation is an independent,
    deterministically-seeded simulation ([Sim.t] plus its whole world),
    so sweeps are embarrassingly parallel.  [map] fans the points across
    OCaml 5 domains with a shared work-stealing index and merges results
    back {e in input order}, so tables are bit-identical to a serial run
    regardless of the job count (determinism is per-point, ordering is
    ours).

    The default job count is process-wide ({!set_default_jobs}); the
    bench harness sets it from [--jobs N] / [--serial].  A worker that
    raises aborts the sweep: remaining points are skipped and the first
    exception is re-raised on the caller after all domains join. *)

(** Number of domains used when [?jobs] is omitted.  Initially
    {!recommended_jobs}. *)
val default_jobs : unit -> int

(** Set the process-wide default job count (clamped to >= 1). *)
val set_default_jobs : int -> unit

(** [Domain.recommended_domain_count ()]. *)
val recommended_jobs : unit -> int

(** [map ?jobs f xs] is [List.map f xs], computed on up to [jobs]
    domains (the caller participates), results in input order. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [concat_map ?jobs f xs] is [List.concat_map f xs] with the same
    fan-out and ordering guarantee as {!map}. *)
val concat_map : ?jobs:int -> ('a -> 'b list) -> 'a list -> 'b list
