open Reflex_engine
open Reflex_stats

type result = { iops : float; mbps : float; mean_us : float; p95_us : float; completed : int }

(* Each FIO worker is a Linux thread: submission and reaping cost CPU on
   its core (~7us per I/O round trip), capping a thread near 140K IOPS —
   which is why the paper needs 5-6 threads to reach peak (§5.6). *)
let run sim path ~threads ~qd ?(bytes = 4096) ?(read_ratio = 1.0) ?(per_io_cpu = Time.of_float_us 7.0)
    ~duration ?(seed = 0xF10_0001L) () k =
  if threads < 1 || qd < 1 then invalid_arg "Fio.run: threads/qd";
  let prng = Prng.create seed in
  let cores = Array.init threads (fun _ -> Resource.create sim ~servers:1) in
  let half_cpu = Time.scale per_io_cpu 0.5 in
  let hist = Hdr_histogram.create () in
  let started = Sim.now sim in
  let warmup_until = Time.add started (Time.scale duration 0.2) in
  let stop_at = Time.add started duration in
  let measured = ref 0 in
  let outstanding = ref 0 in
  let finished = ref false in
  let maybe_finish () =
    if (not !finished) && !outstanding = 0 && Time.(Sim.now sim >= stop_at) then begin
      finished := true;
      let window = Time.to_float_sec (Time.diff stop_at warmup_until) in
      let iops = float_of_int !measured /. window in
      k
        {
          iops;
          mbps = iops *. float_of_int bytes /. 1e6;
          mean_us = (if Hdr_histogram.count hist = 0 then Float.nan else Hdr_histogram.mean_us hist);
          p95_us =
            (if Hdr_histogram.count hist = 0 then Float.nan
             else Hdr_histogram.percentile_us hist 95.0);
          completed = !measured;
        }
    end
  in
  (* Slot cycle: charge submit CPU, issue, await completion, charge reap
     CPU, record, reissue. *)
  let rec slot core () =
    if Time.(Sim.now sim < stop_at) then begin
      let kind = Workload.kind_of prng ~read_ratio in
      let lba = Int64.of_int (Prng.int prng 8_000_000) in
      incr outstanding;
      Resource.submit core ~service:half_cpu (fun ~started:_ ~finished:_ ->
          let issued = Sim.now sim in
          Access_path.submit path ~kind ~lba ~bytes (fun ~latency:_ ->
              Resource.submit core ~service:half_cpu (fun ~started:_ ~finished:_ ->
                  decr outstanding;
                  if Time.(issued >= warmup_until) && Time.(issued < stop_at) then begin
                    incr measured;
                    Hdr_histogram.record hist (Time.diff (Sim.now sim) issued)
                  end;
                  slot core ();
                  maybe_finish ())))
    end
    else maybe_finish ()
  in
  for i = 0 to (threads * qd) - 1 do
    let core = cores.(i mod threads) in
    ignore (Sim.at sim (Sim.now sim) (slot core))
  done
