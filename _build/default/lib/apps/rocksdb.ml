open Reflex_engine

type bench = { name : string; phases : Workload.phase list }

(* Bulk load: memtable flushes and compaction write sequential chunks;
   the device's write/GC bandwidth is the bottleneck at every access path
   (paper: "performance is almost equal between local and remote as the
   Flash itself limits IOPS").  16KB writes at a demand far above the
   device's write capability. *)
let bulkload =
  {
    name = "BL";
    phases =
      [
        Workload.Parallel
          { ios = 10_000; demand_iops = 100_000.0; window = 128; read_ratio = 0.0; bytes = 16_384 };
      ];
  }

(* Random read: 32 reader threads; page-cache misses demand ~92K 4KB
   reads/s — above iSCSI's per-core message ceiling, well below
   ReFlex's. *)
let randomread =
  {
    name = "RR";
    phases =
      [
        Workload.Parallel
          { ios = 45_000; demand_iops = 92_000.0; window = 64; read_ratio = 1.0; bytes = 4096 };
        (* WAL/metadata syncs serialize occasionally. *)
        Workload.Serial
          { ios = 120; think = Time.of_float_us 25.0; read_ratio = 0.5; bytes = 4096 };
      ];
  }

(* Read-while-writing: the same lookup stream with a background writer
   mixing in (92% reads), stressing both the message ceiling and the
   device's read/write interference. *)
let readwhilewriting =
  {
    name = "RwW";
    phases =
      [
        Workload.Parallel
          { ios = 45_000; demand_iops = 88_000.0; window = 64; read_ratio = 0.92; bytes = 4096 };
        Workload.Serial
          { ios = 120; think = Time.of_float_us 25.0; read_ratio = 0.5; bytes = 4096 };
      ];
  }

let all = [ bulkload; randomread; readwhilewriting ]

let run sim path bench k = Workload.run sim path bench.phases k
