(** A uniform way for applications to reach Flash — local, via ReFlex, or
    via a baseline remote server — so the Figure-7 experiments can run the
    same application model over every access path. *)

open Reflex_engine
open Reflex_flash

type t

(** Direct local access (SPDK baseline). *)
val local : Reflex_baselines.Local.t -> t

(** Remote access through the Linux block-device driver model (used for
    both ReFlex and the baseline servers — pass the matching [accept]). *)
val remote :
  Sim.t ->
  Reflex_net.Fabric.t ->
  server_host:Reflex_net.Fabric.host ->
  accept:(Reflex_proto.Message.t Reflex_net.Tcp_conn.t -> unit) ->
  n_contexts:int ->
  tenant:int ->
  ?slo:Reflex_proto.Message.slo ->
  unit ->
  (t -> unit) ->
  unit

(** Submit one block I/O; [k ~latency] on completion. *)
val submit : t -> kind:Io_op.kind -> lba:int64 -> bytes:int -> (latency:Time.t -> unit) -> unit
