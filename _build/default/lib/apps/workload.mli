(** Phase-structured application I/O engine.

    The Figure-7 applications (FlashX graph analytics, RocksDB) are
    modelled as sequences of I/O phases over an {!Access_path}:

    - a {e parallel} phase issues I/O at the rate the application's
      compute can generate it (deep asynchronous I/O, as in SAFS or a
      threaded db_bench), with a bounded outstanding window: when the
      path cannot keep up, arrivals stall and the phase becomes
      throughput-bound — this is what penalizes iSCSI's ~70K IOPS/core;
    - a {e serial} phase issues dependent I/Os one at a time (pointer
      chasing, WAL appends), making end-to-end time latency-bound.

    End-to-end runtime is what the experiment reports; slowdown versus
    the local path reproduces Figures 7b/7c. *)

open Reflex_engine
open Reflex_flash

type phase =
  | Parallel of {
      ios : int;
      demand_iops : float;  (** rate the app generates I/O when not stalled *)
      window : int;  (** max outstanding I/Os *)
      read_ratio : float;
      bytes : int;
    }
  | Serial of { ios : int; think : Time.t; read_ratio : float; bytes : int }

(** [run sim path phases k] executes the phases back-to-back and passes
    the total elapsed time to [k]. *)
val run :
  Sim.t ->
  Access_path.t ->
  ?seed:int64 ->
  ?lba_hi:int64 ->
  phase list ->
  (elapsed:Time.t -> unit) ->
  unit

(** Total I/Os across phases, for sanity checks. *)
val total_ios : phase list -> int

val kind_of : Prng.t -> read_ratio:float -> Io_op.kind
