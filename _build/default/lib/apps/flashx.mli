(** FlashX graph-analytics workload models (Figure 7b).

    FlashX runs graph algorithms over SAFS, a user-space filesystem that
    streams vertex/edge pages from Flash with deep asynchronous I/O.  The
    paper evaluates four benchmarks on the SOC-LiveJournal1 graph (4.8M
    vertices, 68.9M edges).  Each benchmark here is an I/O-phase model
    capturing what determines remote-access slowdown: how fast the
    computation demands pages (throughput sensitivity) and how much
    dependent, serial page chasing it does (latency sensitivity).
    BFS and SCC demand pages faster and have more serial traversal than
    the bandwidth-friendly WCC/PageRank scans, which is why iSCSI slows
    them most (paper: 40%% vs 15%%) while ReFlex stays within ~4%%. *)

open Reflex_engine

type bench = { name : string; phases : Workload.phase list }

(** The four paper benchmarks, scaled 1:16 from LiveJournal (so a run
    completes in simulable time); relative I/O structure is preserved. *)
val wcc : bench

val pagerank : bench
val bfs : bench
val scc : bench
val all : bench list

(** [run sim path bench k] — [k ~elapsed] with end-to-end runtime. *)
val run : Sim.t -> Access_path.t -> bench -> (elapsed:Time.t -> unit) -> unit
