(** Application workload models for the paper's legacy-application
    evaluation (Figure 7): FIO, FlashX graph analytics and RocksDB, all
    running over a uniform {!Access_path} (local SPDK, ReFlex block
    device, or a baseline remote server). *)

module Access_path = Access_path
module Workload = Workload
module Fio = Fio
module Flashx = Flashx
module Rocksdb = Rocksdb
