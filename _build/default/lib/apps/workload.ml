open Reflex_engine
open Reflex_flash

type phase =
  | Parallel of {
      ios : int;
      demand_iops : float;
      window : int;
      read_ratio : float;
      bytes : int;
    }
  | Serial of { ios : int; think : Time.t; read_ratio : float; bytes : int }

let total_ios phases =
  List.fold_left
    (fun acc -> function Parallel { ios; _ } -> acc + ios | Serial { ios; _ } -> acc + ios)
    0 phases

let kind_of prng ~read_ratio = if Prng.bool prng read_ratio then Io_op.Read else Io_op.Write

let run sim path ?(seed = 0xA995_0001L) ?(lba_hi = 8_000_000L) phases k =
  let prng = Prng.create seed in
  let started = Sim.now sim in
  let random_lba () = Int64.of_int (Prng.int prng (Int64.to_int lba_hi)) in
  let rec run_phase = function
    | [] -> k ~elapsed:(Time.diff (Sim.now sim) started)
    | Serial { ios; think; read_ratio; bytes } :: rest ->
      let remaining = ref ios in
      let rec next () =
        if !remaining = 0 then run_phase rest
        else begin
          decr remaining;
          Access_path.submit path ~kind:(kind_of prng ~read_ratio) ~lba:(random_lba ()) ~bytes
            (fun ~latency:_ ->
              if Time.(think > Time.zero) then ignore (Sim.after sim think next) else next ())
        end
      in
      next ()
    | Parallel { ios; demand_iops; window; read_ratio; bytes } :: rest ->
      if demand_iops <= 0.0 then invalid_arg "Workload: demand_iops";
      let to_issue = ref ios and outstanding = ref 0 and completed = ref 0 in
      let gap = Time.of_float_ns (1e9 /. demand_iops) in
      let stalled = ref false in
      let rec on_complete ~latency:_ =
        decr outstanding;
        incr completed;
        if !completed = ios then run_phase rest
        else if !stalled then begin
          (* Compute was waiting for a slot: resume issuing now. *)
          stalled := false;
          issue ()
        end
      and issue () =
        if !to_issue > 0 then begin
          if !outstanding >= window then stalled := true
          else begin
            decr to_issue;
            incr outstanding;
            Access_path.submit path ~kind:(kind_of prng ~read_ratio) ~lba:(random_lba ()) ~bytes
              on_complete;
            ignore (Sim.after sim gap issue)
          end
        end
      in
      issue ()
  in
  run_phase phases
