
type t =
  | Local of Reflex_baselines.Local.t
  | Remote of Reflex_client.Blk_dev.t

let local l = Local l

let remote sim fabric ~server_host ~accept ~n_contexts ~tenant ?slo () k =
  Reflex_client.Blk_dev.create sim fabric ~server_host ~accept ~n_contexts ~tenant ?slo ()
    (fun dev -> k (Remote dev))

let submit t ~kind ~lba ~bytes k =
  match t with
  | Local l ->
    ignore lba;
    Reflex_baselines.Local.submit l ~kind ~bytes k
  | Remote dev -> Reflex_client.Blk_dev.submit_bio dev ~kind ~lba ~bytes k
