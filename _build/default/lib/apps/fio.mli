(** The flexible I/O tester (Figure 7a): [threads] workers, each keeping
    [qd] random 4KB requests in flight for [duration]. *)

open Reflex_engine

type result = {
  iops : float;
  mbps : float;
  mean_us : float;
  p95_us : float;
  completed : int;
}

(** [run sim path ~threads ~qd ~bytes ~duration k] — [k result] fires once
    the run (plus drain) ends.  A warmup of 20%% of [duration] is
    discarded.  Each worker thread charges [per_io_cpu] (default 7us,
    ~140K IOPS/thread — the Linux submission-path cost that makes FIO
    need 5-6 threads to reach peak throughput, §5.6). *)
val run :
  Sim.t ->
  Access_path.t ->
  threads:int ->
  qd:int ->
  ?bytes:int ->
  ?read_ratio:float ->
  ?per_io_cpu:Time.t ->
  duration:Time.t ->
  ?seed:int64 ->
  unit ->
  (result -> unit) ->
  unit
