(** RocksDB (db_bench) workload models (Figure 7c).

    The paper places a 43GB database and its write-ahead log on Flash
    (ext4 over the local NVMe driver, the ReFlex block device, or iSCSI),
    with cgroups bounding the page cache, and runs three db_bench
    workloads:

    - bulkload (BL): write-heavy ingestion + compaction — bounded by the
      Flash device's write bandwidth, so local and remote perform alike;
    - randomread (RR): many reader threads issuing 4KB point lookups —
      throughput-sensitive;
    - readwhilewriting (RwW): point lookups against a background writer —
      throughput-sensitive with write interference. *)

open Reflex_engine

type bench = { name : string; phases : Workload.phase list }

val bulkload : bench
val randomread : bench
val readwhilewriting : bench
val all : bench list

val run : Sim.t -> Access_path.t -> bench -> (elapsed:Time.t -> unit) -> unit
