open Reflex_engine

type bench = { name : string; phases : Workload.phase list }

(* Scaled to ~1/16 of the LiveJournal page footprint: the graph's 73.7M
   vertex+edge records at ~16B each span ~288K 4KB pages; one analytics
   pass touches each a small number of times.  Demand rates reflect how
   compute-bound each algorithm is; serial phases model dependent
   traversal (frontier expansion, component merging). *)

let scans ~name ~passes ~demand ~serial_ios ~serial_think_us =
  {
    name;
    phases =
      [
        Workload.Parallel
          { ios = passes * 18_000; demand_iops = demand; window = 64; read_ratio = 1.0; bytes = 4096 };
        Workload.Serial
          {
            ios = serial_ios;
            think = Time.of_float_us serial_think_us;
            read_ratio = 1.0;
            bytes = 4096;
          };
      ];
  }

(* WCC and PageRank are compute-heavy scans whose page demand sits just
   above the iSCSI message ceiling; little dependent I/O. *)
let wcc = scans ~name:"WCC" ~passes:2 ~demand:80_000.0 ~serial_ios:60 ~serial_think_us:30.0
let pagerank = scans ~name:"PR" ~passes:2 ~demand:78_000.0 ~serial_ios:80 ~serial_think_us:30.0

(* BFS and SCC demand pages faster (less compute per page) and chase
   pointers across levels/components. *)
let bfs = scans ~name:"BFS" ~passes:1 ~demand:90_000.0 ~serial_ios:150 ~serial_think_us:15.0
let scc = scans ~name:"SCC" ~passes:2 ~demand:90_000.0 ~serial_ios:200 ~serial_think_us:15.0

let all = [ wcc; pagerank; bfs; scc ]

let run sim path bench k = Workload.run sim path bench.phases k
