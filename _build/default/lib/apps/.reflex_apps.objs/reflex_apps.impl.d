lib/apps/reflex_apps.ml: Access_path Fio Flashx Rocksdb Workload
