lib/apps/access_path.mli: Io_op Reflex_baselines Reflex_engine Reflex_flash Reflex_net Reflex_proto Sim Time
