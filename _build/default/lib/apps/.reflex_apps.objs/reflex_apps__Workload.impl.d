lib/apps/workload.ml: Access_path Int64 Io_op List Prng Reflex_engine Reflex_flash Sim Time
