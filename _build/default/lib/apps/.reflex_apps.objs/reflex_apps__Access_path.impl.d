lib/apps/access_path.ml: Reflex_baselines Reflex_client
