lib/apps/workload.mli: Access_path Io_op Prng Reflex_engine Reflex_flash Sim Time
