lib/apps/fio.mli: Access_path Reflex_engine Sim Time
