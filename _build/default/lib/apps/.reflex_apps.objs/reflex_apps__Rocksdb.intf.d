lib/apps/rocksdb.mli: Access_path Reflex_engine Sim Time Workload
