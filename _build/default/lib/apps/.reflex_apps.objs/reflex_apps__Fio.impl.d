lib/apps/fio.ml: Access_path Array Float Hdr_histogram Int64 Prng Reflex_engine Reflex_stats Resource Sim Time Workload
