lib/apps/flashx.ml: Reflex_engine Time Workload
