lib/apps/flashx.mli: Access_path Reflex_engine Sim Time Workload
