lib/apps/rocksdb.ml: Reflex_engine Time Workload
