(** The paper's comparison points: direct local SPDK access, and the
    Linux-based libaio+libevent and iSCSI remote servers. *)

module Local = Local
module Baseline_server = Baseline_server
