lib/baselines/reflex_baselines.ml: Baseline_server Local
