lib/baselines/local.mli: Device_profile Io_op Nvme_model Reflex_engine Reflex_flash Sim Time
