lib/baselines/baseline_server.ml: Array Codec Device_profile Fabric Io_op Message Nvme_model Prng Reflex_engine Reflex_flash Reflex_net Reflex_proto Resource Sim Stack_model Tcp_conn Time
