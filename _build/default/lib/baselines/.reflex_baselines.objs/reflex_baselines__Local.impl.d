lib/baselines/local.ml: Array Device_profile Nvme_model Prng Reflex_engine Reflex_flash Resource Sim Time
