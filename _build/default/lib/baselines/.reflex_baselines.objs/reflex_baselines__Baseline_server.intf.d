lib/baselines/baseline_server.mli: Fabric Message Reflex_engine Reflex_flash Reflex_net Reflex_proto Sim Tcp_conn
