open Reflex_engine
open Reflex_flash
open Reflex_net
open Reflex_proto

type kind = Libaio | Iscsi

type t = {
  sim : Sim.t;
  kind : kind;
  host : Fabric.host;
  dev : Nvme_model.t;
  workers : Resource.t array;
  per_msg_cpu : Time.t;
  mutable rr : int;
  mutable completed : int;
}

let stack_of = function Libaio -> Stack_model.linux_server | Iscsi -> Stack_model.iscsi_server

let name_of = function Libaio -> "libaio-server" | Iscsi -> "iscsi-target"

let create sim ~fabric ~kind ?(profile = Device_profile.device_a) ?(n_threads = 1)
    ?(seed = 0xBA5E_11E5L) () =
  if n_threads < 1 then invalid_arg "Baseline_server.create: n_threads";
  let stack = stack_of kind in
  {
    sim;
    kind;
    host = Fabric.add_host fabric ~name:(name_of kind) ~stack;
    dev = Nvme_model.create sim ~profile ~prng:(Prng.create seed);
    workers = Array.init n_threads (fun _ -> Resource.create sim ~servers:1);
    per_msg_cpu = stack.Stack_model.per_msg_cpu;
    rr = 0;
    completed = 0;
  }

let host t = t.host
let device t = t.dev

let reply conn msg = Tcp_conn.send_to_client conn ~size:(Codec.encoded_size msg) msg

(* Worker thread: request CPU, then a plain FIFO submission to the device
   (no cost model, no rate limiting, no isolation), then response CPU.
   Completions run at high priority: a libevent loop drains ready
   completions before accepting new socket reads, so overload backs up in
   the receive queue rather than starving responses. *)
let handle_io t worker conn ~kind ~req_id ~len =
  Resource.submit worker ~priority:Resource.Low ~service:t.per_msg_cpu
    (fun ~started:_ ~finished:_ ->
      Nvme_model.submit t.dev ~kind ~bytes:len (fun ~latency:_ ->
          Resource.submit worker ~priority:Resource.High ~service:t.per_msg_cpu
            (fun ~started:_ ~finished:_ ->
              t.completed <- t.completed + 1;
              let msg =
                match (kind : Io_op.kind) with
                | Io_op.Read -> Message.Read_resp { req_id; status = Message.Ok; len }
                | Io_op.Write -> Message.Write_resp { req_id; status = Message.Ok }
              in
              reply conn msg)))

let accept t conn =
  let worker = t.workers.(t.rr) in
  t.rr <- (t.rr + 1) mod Array.length t.workers;
  Tcp_conn.set_server_handler conn (fun msg ~size:_ ->
      match msg with
      | Message.Register { tenant; _ } ->
        (* No SLOs here: registration always succeeds and means nothing. *)
        reply conn (Message.Registered { handle = tenant; status = Message.Ok })
      | Message.Unregister { handle } -> reply conn (Message.Unregistered { handle })
      | Message.Read_req { req_id; len; _ } ->
        handle_io t worker conn ~kind:Io_op.Read ~req_id ~len
      | Message.Write_req { req_id; len; _ } ->
        handle_io t worker conn ~kind:Io_op.Write ~req_id ~len
      | Message.Barrier_req { req_id; _ } ->
        (* No ordering support in the baselines. *)
        reply conn (Message.Error_resp { req_id; status = Message.Bad_request })
      | Message.Registered _ | Message.Unregistered _ | Message.Read_resp _
      | Message.Write_resp _ | Message.Barrier_resp _ | Message.Error_resp _ ->
        reply conn (Message.Error_resp { req_id = 0L; status = Message.Bad_request }))

let requests_completed t = t.completed
