(** Local Flash access through SPDK (the paper's best-case baseline,
    §5.1): the application maps NVMe queues directly — no network, no
    filesystem, no block layer.  Per-I/O CPU on the submitting thread is
    what limits a single core to ~870K IOPS (§5.3). *)

open Reflex_engine
open Reflex_flash

type t

val create :
  Sim.t ->
  ?profile:Device_profile.t ->
  ?n_threads:int ->
  ?submit_cpu:Time.t ->
  ?complete_cpu:Time.t ->
  ?seed:int64 ->
  unit ->
  t

val device : t -> Nvme_model.t

(** [submit t ~kind ~bytes k] — charged to a thread (round-robin), then to
    the device; [k ~latency] measures issue-to-completion. *)
val submit : t -> kind:Io_op.kind -> bytes:int -> (latency:Time.t -> unit) -> unit

val completed : t -> int
