(** Linux-based remote Flash servers: the iSCSI target and the
    libaio+libevent server of the paper's comparison (§5.1).

    Both speak the same wire protocol as ReFlex (so the same clients and
    block driver work against them) but differ fundamentally from the
    dataplane: requests are handled by conventional kernel-scheduled
    worker threads; there is {e no QoS scheduler} — requests go straight
    to the device in FIFO order — and every message pays Linux stack
    costs (interrupt coalescing, wakeups, and for iSCSI, protocol
    processing and kernel/user copies).  Per-core throughput: ~75K IOPS
    (libaio), ~70K (iSCSI). *)

open Reflex_engine
open Reflex_net
open Reflex_proto

type kind = Libaio | Iscsi

type t

val create :
  Sim.t ->
  fabric:Fabric.t ->
  kind:kind ->
  ?profile:Reflex_flash.Device_profile.t ->
  ?n_threads:int ->
  ?seed:int64 ->
  unit ->
  t

val host : t -> Fabric.host
val device : t -> Reflex_flash.Nvme_model.t

(** Attach an incoming connection (assigned round-robin to a worker). *)
val accept : t -> Message.t Tcp_conn.t -> unit

val requests_completed : t -> int
