open Reflex_engine
open Reflex_flash

type t = {
  sim : Sim.t;
  dev : Nvme_model.t;
  cores : Resource.t array;
  submit_cpu : Time.t;
  complete_cpu : Time.t;
  mutable rr : int;
  mutable completed : int;
}

(* 1.15us per I/O across submission and completion: 870K IOPS/core. *)
let create sim ?(profile = Device_profile.device_a) ?(n_threads = 1)
    ?(submit_cpu = Time.ns 500) ?(complete_cpu = Time.ns 650) ?(seed = 0x10CA1_5EEDL) () =
  if n_threads < 1 then invalid_arg "Local.create: n_threads";
  {
    sim;
    dev = Nvme_model.create sim ~profile ~prng:(Prng.create seed);
    cores = Array.init n_threads (fun _ -> Resource.create sim ~servers:1);
    submit_cpu;
    complete_cpu;
    rr = 0;
    completed = 0;
  }

let device t = t.dev

let submit t ~kind ~bytes k =
  let core = t.cores.(t.rr) in
  t.rr <- (t.rr + 1) mod Array.length t.cores;
  let issued_at = Sim.now t.sim in
  Resource.submit core ~service:t.submit_cpu (fun ~started:_ ~finished:_ ->
      Nvme_model.submit t.dev ~kind ~bytes (fun ~latency:_ ->
          Resource.submit core ~service:t.complete_cpu (fun ~started:_ ~finished:_ ->
              t.completed <- t.completed + 1;
              k ~latency:(Time.diff (Sim.now t.sim) issued_at))))

let completed t = t.completed
