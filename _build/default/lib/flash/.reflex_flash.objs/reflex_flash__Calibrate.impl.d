lib/flash/calibrate.ml: Device_profile Float Hdr_histogram Io_op Linear_fit List Nvme_model Prng Reflex_engine Reflex_stats Sim Time
