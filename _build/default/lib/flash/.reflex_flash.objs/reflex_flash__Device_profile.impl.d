lib/flash/device_profile.ml: Format List Reflex_engine String Time
