lib/flash/nvme_model.mli: Device_profile Io_op Prng Reflex_engine Sim Time
