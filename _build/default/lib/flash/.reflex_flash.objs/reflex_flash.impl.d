lib/flash/reflex_flash.ml: Calibrate Device_profile Io_op Nvme_model Queue_pair
