lib/flash/io_op.ml: Format
