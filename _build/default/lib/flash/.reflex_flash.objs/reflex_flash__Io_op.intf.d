lib/flash/io_op.mli: Format
