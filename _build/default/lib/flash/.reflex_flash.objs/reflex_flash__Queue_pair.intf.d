lib/flash/queue_pair.mli: Io_op Nvme_model Reflex_engine Time
