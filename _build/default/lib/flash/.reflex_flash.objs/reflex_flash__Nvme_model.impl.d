lib/flash/nvme_model.ml: Array Device_profile Float Io_op Prng Queue Reflex_engine Resource Sim Time
