lib/flash/calibrate.mli: Device_profile Reflex_engine
