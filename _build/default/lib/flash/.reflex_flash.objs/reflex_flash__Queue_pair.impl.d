lib/flash/queue_pair.ml: Device_profile Io_op List Nvme_model Queue Reflex_engine
