lib/flash/device_profile.mli: Format Reflex_engine Time
