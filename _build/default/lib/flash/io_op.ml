type kind = Read | Write

let kind_to_string = function Read -> "read" | Write -> "write"
let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)
let equal_kind a b = match (a, b) with Read, Read | Write, Write -> true | _ -> false

let lba_size = 4096

let sectors_of_bytes b =
  if b <= 0 then invalid_arg "Io_op.sectors_of_bytes: non-positive size";
  max 1 ((b + lba_size - 1) / lba_size)
