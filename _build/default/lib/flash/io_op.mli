(** I/O request descriptors shared by the Flash model, the QoS scheduler
    and the wire protocol. *)

type kind = Read | Write

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val equal_kind : kind -> kind -> bool

(** Logical-block size used for cost accounting: the paper's devices
    operate at 4KB granularity. *)
val lba_size : int

(** [sectors_of_bytes b] is [ceil (b / 4KB)], with a minimum of 1: requests
    of 4KB and smaller cost the same (paper §3.2.1). *)
val sectors_of_bytes : int -> int
