(** Device characterization and cost-model calibration (paper §3.2.1).

    Replicates the authors' procedure: measure tail latency versus
    throughput on the (simulated) local device for several read/write
    ratios and request sizes, then fit the request cost model
    C(I/O type, r) and the maximum sustainable token rate for a given
    tail-latency SLO. *)

type point = {
  offered_iops : float;
  achieved_iops : float;
  achieved_read_iops : float;
  achieved_write_iops : float;
  read_ratio : float;
  mean_read_us : float;
  p95_read_us : float;
  mean_write_us : float;
  p95_write_us : float;
}

type config = {
  duration : Reflex_engine.Time.t;  (** measured interval per point *)
  warmup : Reflex_engine.Time.t;  (** discarded lead-in per point *)
  seed : int64;
}

val default_config : config

(** One open-loop (Poisson) measurement at the given offered rate, issued
    directly to the local device — no network. *)
val measure :
  ?config:config -> Device_profile.t -> read_ratio:float -> bytes:int -> rate:float -> point

(** Latency-throughput sweep (a Figure 1 curve). *)
val latency_curve :
  ?config:config ->
  Device_profile.t ->
  read_ratio:float ->
  bytes:int ->
  rates:float list ->
  point list

(** Max raw IOPS such that p95 read latency stays under the target, found
    by binary search between 0 and the profile's nominal ceiling. *)
val max_rate_for_slo :
  ?config:config ->
  Device_profile.t ->
  read_ratio:float ->
  bytes:int ->
  p95_target_us:float ->
  float

(** Calibrated cost model parameters recovered from measurements. *)
type fitted = {
  write_cost : float;  (** C(write, r<100%) in tokens *)
  ro_read_cost : float;  (** C(read, r=100%) in tokens *)
  token_rate : float;  (** tokens/s sustainable at the target p95 *)
  fit_r2 : float;
}

(** [fit_cost_model profile ~p95_target_us] measures the SLO-constrained
    throughput at several read ratios and solves for the cost model by
    least squares (see DESIGN.md for the linearization). *)
val fit_cost_model :
  ?config:config -> ?read_ratios:float list -> Device_profile.t -> p95_target_us:float -> fitted

(** Tokens/sec the device sustains at the given tail-latency SLO — what
    the ReFlex control plane uses to size token generation.  Measured at a
    reference mixed ratio (90% reads). *)
val max_token_rate : ?config:config -> Device_profile.t -> p95_target_us:float -> float
