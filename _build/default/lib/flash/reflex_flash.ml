(** Simulated NVMe Flash substrate: device profiles, the die-level device
    model, queue pairs and the calibration procedure of paper §3.2.1. *)

module Io_op = Io_op
module Device_profile = Device_profile
module Nvme_model = Nvme_model
module Queue_pair = Queue_pair
module Calibrate = Calibrate
