type completion = { cookie : int; kind : Io_op.kind; latency : Reflex_engine.Time.t }

type t = {
  dev : Nvme_model.t;
  cq : completion Queue.t;
  mutable inflight : int;
  mutable completion_hook : unit -> unit;
}

let create dev = { dev; cq = Queue.create (); inflight = 0; completion_hook = (fun () -> ()) }

let set_completion_hook t f = t.completion_hook <- f

let submit t ~kind ~bytes ~cookie =
  let depth = (Nvme_model.profile t.dev).Device_profile.sq_depth in
  if t.inflight >= depth then `Full
  else begin
    t.inflight <- t.inflight + 1;
    Nvme_model.submit t.dev ~kind ~bytes (fun ~latency ->
        t.inflight <- t.inflight - 1;
        Queue.add { cookie; kind; latency } t.cq;
        t.completion_hook ());
    `Ok
  end

let poll t ~max =
  let rec take acc n =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt t.cq with
      | None -> List.rev acc
      | Some c -> take (c :: acc) (n - 1)
  in
  take [] max

let inflight t = t.inflight
let completions_pending t = Queue.length t.cq
