open Reflex_engine
open Reflex_stats

type point = {
  offered_iops : float;
  achieved_iops : float;
  achieved_read_iops : float;
  achieved_write_iops : float;
  read_ratio : float;
  mean_read_us : float;
  p95_read_us : float;
  mean_write_us : float;
  p95_write_us : float;
}

type config = { duration : Time.t; warmup : Time.t; seed : int64 }

let default_config = { duration = Time.ms 400; warmup = Time.ms 100; seed = 0xF1A5_CA11_B8A7E5L }

let measure ?(config = default_config) profile ~read_ratio ~bytes ~rate =
  if read_ratio < 0.0 || read_ratio > 1.0 then invalid_arg "Calibrate.measure: read_ratio";
  if rate <= 0.0 then invalid_arg "Calibrate.measure: rate";
  let sim = Sim.create ~seed:config.seed () in
  let prng = Prng.split (Sim.prng sim) in
  let arrival_prng = Prng.split (Sim.prng sim) in
  let dev = Nvme_model.create sim ~profile ~prng in
  let reads = Hdr_histogram.create () and writes = Hdr_histogram.create () in
  let read_completions = ref 0 and write_completions = ref 0 in
  let mean_gap_ns = 1e9 /. rate in
  let stop_at = Time.add config.warmup config.duration in
  let rec arrival () =
    let now = Sim.now sim in
    if Time.(now <= stop_at) then begin
      let kind = if Prng.bool arrival_prng read_ratio then Io_op.Read else Io_op.Write in
      let measured = Time.(now >= config.warmup) in
      Nvme_model.submit dev ~kind ~bytes (fun ~latency ->
          (* Latencies count for any request submitted in the window;
             completion-rate counters only up to the window's end, so that
             the post-window drain cannot inflate the achieved rate. *)
          if measured then begin
            let in_window = Time.(Sim.now sim <= stop_at) in
            match kind with
            | Read ->
              Hdr_histogram.record reads latency;
              if in_window then incr read_completions
            | Write ->
              Hdr_histogram.record writes latency;
              if in_window then incr write_completions
          end);
      let gap = Time.of_float_ns (Prng.exponential arrival_prng ~mean:mean_gap_ns) in
      ignore (Sim.after sim (Time.max gap (Time.ns 1)) arrival)
    end
  in
  ignore (Sim.at sim Time.zero arrival);
  (* Cut the run off: under overload the backlog would take unbounded
     simulated time to drain; latencies past the horizon saturate. *)
  let horizon = Time.add stop_at (Time.ms 200) in
  ignore (Sim.run ~until:horizon sim);
  let measured_sec = Time.to_float_sec config.duration in
  let pct h p = if Hdr_histogram.count h = 0 then Float.nan else Hdr_histogram.percentile_us h p in
  let mean h = if Hdr_histogram.count h = 0 then Float.nan else Hdr_histogram.mean_us h in
  let achieved_reads = float_of_int !read_completions /. measured_sec in
  let achieved_writes = float_of_int !write_completions /. measured_sec in
  {
    offered_iops = rate;
    achieved_iops = achieved_reads +. achieved_writes;
    achieved_read_iops = achieved_reads;
    achieved_write_iops = achieved_writes;
    read_ratio;
    mean_read_us = mean reads;
    p95_read_us = pct reads 95.0;
    mean_write_us = mean writes;
    p95_write_us = pct writes 95.0;
  }

let latency_curve ?config profile ~read_ratio ~bytes ~rates =
  List.map (fun rate -> measure ?config profile ~read_ratio ~bytes ~rate) rates

(* A point "meets" the SLO when p95 read latency is under target AND the
   device actually kept up with the offered load (otherwise the open-loop
   backlog makes the measured latency an artifact of the horizon). *)
let meets point ~p95_target_us =
  let keeps_up offered achieved = offered < 500.0 || achieved >= 0.95 *. offered in
  (not (Float.is_nan point.p95_read_us))
  && point.p95_read_us <= p95_target_us
  && keeps_up (point.offered_iops *. point.read_ratio) point.achieved_read_iops
  && keeps_up (point.offered_iops *. (1.0 -. point.read_ratio)) point.achieved_write_iops

let max_rate_for_slo ?config profile ~read_ratio ~bytes ~p95_target_us =
  let ceiling = Device_profile.read_only_iops profile *. 1.2 in
  let rec search lo hi iters =
    if iters = 0 then lo
    else
      let mid = (lo +. hi) /. 2.0 in
      let point = measure ?config profile ~read_ratio ~bytes ~rate:mid in
      if meets point ~p95_target_us then search mid hi (iters - 1) else search lo mid (iters - 1)
  in
  search 1_000.0 ceiling 9

type fitted = { write_cost : float; ro_read_cost : float; token_rate : float; fit_r2 : float }

(* Linearization (DESIGN.md): with K = tokens/s at the SLO and c_w the
   write cost, the SLO-constrained raw rate T(r) satisfies
       1/T(r) = 1/K + ((c_w - 1)/K) * (1 - r)
   so an OLS fit of y = 1/T against x = 1-r yields K = 1/intercept and
   c_w = 1 + slope/intercept. *)
let fit_cost_model ?config ?(read_ratios = [ 0.99; 0.95; 0.9; 0.75; 0.5 ]) profile
    ~p95_target_us =
  let bytes = Io_op.lba_size in
  let points =
    List.map
      (fun r ->
        let t = max_rate_for_slo ?config profile ~read_ratio:r ~bytes ~p95_target_us in
        (1.0 -. r, 1.0 /. t))
      read_ratios
  in
  let f = Linear_fit.fit points in
  let token_rate = 1.0 /. f.intercept in
  let write_cost = 1.0 +. (f.slope /. f.intercept) in
  let t_ro = max_rate_for_slo ?config profile ~read_ratio:1.0 ~bytes ~p95_target_us in
  { write_cost; ro_read_cost = token_rate /. t_ro; token_rate; fit_r2 = f.r2 }

let max_token_rate ?config profile ~p95_target_us =
  let r = 0.9 in
  let t = max_rate_for_slo ?config profile ~read_ratio:r ~bytes:Io_op.lba_size ~p95_target_us in
  let c_w = profile.Device_profile.write_cost in
  t *. ((r *. 1.0) +. ((1.0 -. r) *. c_w))
