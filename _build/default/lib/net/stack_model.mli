(** Software network-stack cost models.

    The paper compares polling dataplane stacks (IX: no interrupts, no
    copies, run-to-completion) with conventional Linux sockets (interrupt
    coalescing, scheduler wakeups, per-message syscall costs).  Each
    endpoint in the simulated fabric carries one of these models; the
    fabric applies the latency terms, endpoints charge the CPU terms to
    their own cores. *)

open Reflex_engine

type t = {
  name : string;
  polling : bool;  (** dataplane stacks poll; Linux stacks take interrupts *)
  per_msg_cpu : Time.t;
      (** CPU occupancy to process one message in one direction; bounds
          messages/sec per thread. *)
  tx_overhead : Time.t;  (** fixed added latency on the transmit path *)
  rx_overhead : Time.t;  (** fixed added latency on the receive path *)
  coalesce : Time.t;
      (** NIC interrupt-coalescing window (paper §5.1 configures 20us);
          received packets wait uniformly in [0, coalesce].  Zero for
          polling stacks. *)
  wakeup_mean : Time.t;
      (** scheduler wakeup cost for a blocked receiver thread,
          exponentially distributed.  Zero for polling stacks. *)
  max_msgs_per_sec : float;
      (** nominal per-thread message ceiling (Linux TCP: ~70K/s at 4KB,
          paper §4.2). *)
}

(** IX dataplane used as a client (paper's optimized load generator). *)
val ix_client : t

(** Conventional Linux sockets client (mutilate and the block driver). *)
val linux_client : t

(** The ReFlex server endpoint: polling; CPU is charged by the dataplane
    itself, so [per_msg_cpu] here is zero. *)
val dataplane_server : t

(** Linux-based remote storage server endpoint (libaio/libevent: 75K
    IOPS/core, paper §2.1/§5.3). *)
val linux_server : t

(** iSCSI target endpoint: Linux server plus protocol processing and
    kernel/user data copies on every message. *)
val iscsi_server : t

(** Latency drawn for a message arriving at this endpoint. *)
val rx_delay : t -> Prng.t -> Time.t

(** Latency drawn for a message leaving this endpoint. *)
val tx_delay : t -> Prng.t -> Time.t
