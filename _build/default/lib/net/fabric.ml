open Reflex_engine

type host = {
  name : string;
  stack : Stack_model.t;
  tx_link : Resource.t;
  rx_link : Resource.t;
  prng : Prng.t;
  mutable tx_bytes : int;
  mutable rx_bytes : int;
}

type t = {
  sim : Sim.t;
  ns_per_byte : float;
  switch_latency : Time.t;
  nic_latency : Time.t;
}

let create sim ?(bandwidth_gbps = 10.0) ?(switch_latency = Time.of_float_us 1.2)
    ?(nic_latency = Time.of_float_us 0.7) () =
  if bandwidth_gbps <= 0.0 then invalid_arg "Fabric.create: bandwidth";
  { sim; ns_per_byte = 8.0 /. bandwidth_gbps; switch_latency; nic_latency }

let sim t = t.sim

let add_host t ~name ~stack =
  {
    name;
    stack;
    tx_link = Resource.create t.sim ~servers:1;
    rx_link = Resource.create t.sim ~servers:1;
    prng = Prng.split (Sim.prng t.sim);
    tx_bytes = 0;
    rx_bytes = 0;
  }

let host_name h = h.name
let host_stack h = h.stack

let serialization_time t ~bytes = Time.of_float_ns (float_of_int bytes *. t.ns_per_byte)

let transmit t ~src ~dst ~bytes k =
  if bytes <= 0 then invalid_arg "Fabric.transmit: non-positive size";
  src.tx_bytes <- src.tx_bytes + bytes;
  let ser = serialization_time t ~bytes in
  Resource.submit src.tx_link ~service:ser (fun ~started:_ ~finished:_ ->
      (* NIC -> switch -> NIC propagation. *)
      let wire = Time.add t.switch_latency (Time.scale t.nic_latency 2.0) in
      ignore
        (Sim.after t.sim wire (fun () ->
             Resource.submit dst.rx_link ~service:ser (fun ~started:_ ~finished:_ ->
                 dst.rx_bytes <- dst.rx_bytes + bytes;
                 let stack_delay = Stack_model.rx_delay dst.stack dst.prng in
                 ignore (Sim.after t.sim stack_delay k)))))

let bytes_sent h = h.tx_bytes
let bytes_received h = h.rx_bytes
