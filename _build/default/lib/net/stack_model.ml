open Reflex_engine

type t = {
  name : string;
  polling : bool;
  per_msg_cpu : Time.t;
  tx_overhead : Time.t;
  rx_overhead : Time.t;
  coalesce : Time.t;
  wakeup_mean : Time.t;
  max_msgs_per_sec : float;
}

let ix_client =
  {
    name = "ix-client";
    polling = true;
    per_msg_cpu = Time.ns 1_000;
    tx_overhead = Time.ns 1_500;
    rx_overhead = Time.ns 1_500;
    coalesce = Time.zero;
    wakeup_mean = Time.zero;
    max_msgs_per_sec = 1.2e6;
  }

let linux_client =
  {
    name = "linux-client";
    polling = false;
    per_msg_cpu = Time.of_float_us 7.0;
    tx_overhead = Time.of_float_us 4.0;
    rx_overhead = Time.of_float_us 4.0;
    coalesce = Time.us 20;
    wakeup_mean = Time.of_float_us 8.0;
    max_msgs_per_sec = 70e3;
  }

let dataplane_server =
  {
    name = "reflex-dataplane";
    polling = true;
    per_msg_cpu = Time.zero;
    (* charged by the dataplane thread model *)
    tx_overhead = Time.ns 500;
    rx_overhead = Time.ns 500;
    coalesce = Time.zero;
    wakeup_mean = Time.zero;
    max_msgs_per_sec = 0.85e6;
  }

let linux_server =
  {
    name = "linux-libaio-server";
    polling = false;
    per_msg_cpu = Time.of_float_us 6.7;
    (* 13.3us per request over two directions: 75K IOPS/core *)
    tx_overhead = Time.of_float_us 4.0;
    rx_overhead = Time.of_float_us 4.0;
    coalesce = Time.us 20;
    wakeup_mean = Time.of_float_us 8.0;
    max_msgs_per_sec = 75e3;
  }

let iscsi_server =
  {
    name = "iscsi-target";
    polling = false;
    per_msg_cpu = Time.of_float_us 7.1;
    (* 14.3us/request: 70K IOPS/core (paper SS2.1) *)
    tx_overhead = Time.of_float_us 35.0;
    (* SCSI protocol processing + kernel/user copies each way *)
    rx_overhead = Time.of_float_us 35.0;
    coalesce = Time.us 20;
    wakeup_mean = Time.of_float_us 8.0;
    max_msgs_per_sec = 70e3;
  }

let rx_delay t prng =
  let coalesce =
    if Time.(t.coalesce > Time.zero) then
      Time.of_float_ns (Prng.float_range prng 0.0 (Time.to_float_ns t.coalesce))
    else Time.zero
  in
  let wakeup =
    if Time.(t.wakeup_mean > Time.zero) then
      Time.of_float_ns (Prng.exponential prng ~mean:(Time.to_float_ns t.wakeup_mean))
    else Time.zero
  in
  Time.add t.rx_overhead (Time.add coalesce wakeup)

let tx_delay t prng =
  ignore prng;
  t.tx_overhead
