lib/net/fabric.ml: Prng Reflex_engine Resource Sim Stack_model Time
