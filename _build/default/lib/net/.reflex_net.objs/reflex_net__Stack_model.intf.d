lib/net/stack_model.mli: Prng Reflex_engine Time
