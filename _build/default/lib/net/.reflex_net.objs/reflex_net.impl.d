lib/net/reflex_net.ml: Fabric Stack_model Tcp_conn
