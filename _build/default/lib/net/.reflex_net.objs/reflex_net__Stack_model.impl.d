lib/net/stack_model.ml: Prng Reflex_engine Time
