lib/net/tcp_conn.ml: Fabric Hashtbl Queue Reflex_engine Sim Stack_model
