lib/net/fabric.mli: Reflex_engine Sim Stack_model Time
