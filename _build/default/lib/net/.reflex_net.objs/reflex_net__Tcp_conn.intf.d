lib/net/tcp_conn.mli: Fabric
