(** The datacenter network: hosts with NICs on a switched 10GbE fabric.

    Models the paper's testbed (§5.1): Intel 82599ES 10GbE NICs through an
    Arista switch, jumbo frames, LRO/GRO off, 20us interrupt coalescing on
    Linux endpoints.  Each host has full-duplex tx/rx links whose
    serialization enforces the 10GbE bandwidth ceiling — this is what caps
    4KB IOPS at the NIC before the Flash device saturates (§5.1 "I/O
    size"). *)

open Reflex_engine

type t
type host

val create :
  Sim.t ->
  ?bandwidth_gbps:float ->
  ?switch_latency:Time.t ->
  ?nic_latency:Time.t ->
  unit ->
  t

val sim : t -> Sim.t

val add_host : t -> name:string -> stack:Stack_model.t -> host
val host_name : host -> string
val host_stack : host -> Stack_model.t

(** [transmit t ~src ~dst ~bytes k] delivers [bytes] from [src] to [dst]:
    serialization on the source tx link, NIC+switch propagation,
    serialization on the destination rx link, then the destination stack's
    receive delay (coalescing, wakeups).  [k] runs at delivery. *)
val transmit : t -> src:host -> dst:host -> bytes:int -> (unit -> unit) -> unit

(** Cumulative bytes sent by a host (for bandwidth accounting). *)
val bytes_sent : host -> int

val bytes_received : host -> int

(** Seconds to serialize [bytes] at line rate — the bandwidth ceiling. *)
val serialization_time : t -> bytes:int -> Time.t
