(** Simulated 10GbE network substrate: endpoint stack cost models, the
    switched fabric, and FIFO TCP connections. *)

module Stack_model = Stack_model
module Fabric = Fabric
module Tcp_conn = Tcp_conn
