type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length row)
         (List.length t.columns));
  t.rows <- row :: t.rows

let cell_f ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x
let cell_i n = string_of_int n

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.columns;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)
