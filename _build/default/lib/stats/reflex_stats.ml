(** Measurement toolkit: histograms, rate meters, summaries, fitting and
    table rendering used across experiments. *)

module Hdr_histogram = Hdr_histogram
module Reservoir = Reservoir
module Summary = Summary
module Meter = Meter
module Linear_fit = Linear_fit
module Table = Table
