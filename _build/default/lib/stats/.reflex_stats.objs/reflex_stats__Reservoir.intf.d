lib/stats/reservoir.mli: Reflex_engine
