lib/stats/table.mli:
