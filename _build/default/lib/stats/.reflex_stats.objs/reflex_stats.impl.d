lib/stats/reflex_stats.ml: Hdr_histogram Linear_fit Meter Reservoir Summary Table
