lib/stats/meter.mli: Reflex_engine Sim
