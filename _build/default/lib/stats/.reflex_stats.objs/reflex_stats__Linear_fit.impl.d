lib/stats/linear_fit.ml: List
