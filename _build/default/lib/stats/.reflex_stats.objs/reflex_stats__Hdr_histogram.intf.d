lib/stats/hdr_histogram.mli:
