lib/stats/hdr_histogram.ml: Array Int64
