lib/stats/meter.ml: Reflex_engine Sim Time
