lib/stats/reservoir.ml: Array Prng Reflex_engine
