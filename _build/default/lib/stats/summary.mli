(** Streaming mean/variance/min/max accumulator (Welford's algorithm). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val reset : t -> unit
val pp : Format.formatter -> t -> unit
