(** Exact-percentile sample store with reservoir sampling overflow.

    Stores up to [capacity] values exactly; beyond that, Vitter's
    Algorithm R keeps a uniform sample.  Used in tests as ground truth for
    {!Hdr_histogram} and wherever exact small-sample percentiles are
    needed (e.g. unloaded-latency probes). *)

type t

val create : ?capacity:int -> Reflex_engine.Prng.t -> t
val add : t -> float -> unit
val count : t -> int

(** Exact (or sampled, past capacity) percentile via linear interpolation.
    Raises [Invalid_argument] when empty. *)
val percentile : t -> float -> float

val mean : t -> float
val values : t -> float array
