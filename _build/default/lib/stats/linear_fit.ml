type fit = { slope : float; intercept : float; r2 : float }

let r_squared points f =
  let n = float_of_int (List.length points) in
  let mean_y = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points /. n in
  let ss_tot = List.fold_left (fun acc (_, y) -> acc +. ((y -. mean_y) ** 2.0)) 0.0 points in
  let ss_res = List.fold_left (fun acc (x, y) -> acc +. ((y -. f x) ** 2.0)) 0.0 points in
  if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot)

let fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Linear_fit.fit: need at least 2 points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if denom = 0.0 then invalid_arg "Linear_fit.fit: degenerate x values";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  { slope; intercept; r2 = r_squared points (fun x -> intercept +. (slope *. x)) }

let fit_through_origin points =
  if points = [] then invalid_arg "Linear_fit.fit_through_origin: empty";
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  if sxx = 0.0 then invalid_arg "Linear_fit.fit_through_origin: degenerate x values";
  let slope = sxy /. sxx in
  { slope; intercept = 0.0; r2 = r_squared points (fun x -> slope *. x) }

let eval f x = f.intercept +. (f.slope *. x)
