open Reflex_engine

type t = {
  sim : Sim.t;
  mutable started : Time.t;
  mutable window_start : Time.t;
  mutable total : float;
  mutable window : float;
}

let create sim =
  let now = Sim.now sim in
  { sim; started = now; window_start = now; total = 0.0; window = 0.0 }

let mark t ?(n = 1) () =
  t.total <- t.total +. float_of_int n;
  t.window <- t.window +. float_of_int n

let mark_f t x =
  t.total <- t.total +. x;
  t.window <- t.window +. x

let count t = t.total

let rate t =
  let elapsed = Time.to_float_sec (Time.diff (Sim.now t.sim) t.started) in
  if elapsed <= 0.0 then 0.0 else t.total /. elapsed

let checkpoint t =
  let now = Sim.now t.sim in
  let elapsed = Time.to_float_sec (Time.diff now t.window_start) in
  let r = if elapsed <= 0.0 then 0.0 else t.window /. elapsed in
  t.window_start <- now;
  t.window <- 0.0;
  r

let reset t =
  let now = Sim.now t.sim in
  t.started <- now;
  t.window_start <- now;
  t.total <- 0.0;
  t.window <- 0.0
