(** Least-squares line fitting, used to calibrate the request cost model
    C(I/O type, r) from measured latency-vs-load curves (paper §3.2.1). *)

type fit = { slope : float; intercept : float; r2 : float }

(** Ordinary least squares y = intercept + slope * x.
    Raises [Invalid_argument] on fewer than 2 points. *)
val fit : (float * float) list -> fit

(** Least squares through the origin (y = slope * x). *)
val fit_through_origin : (float * float) list -> fit

(** Evaluate a fit at [x]. *)
val eval : fit -> float -> float
