(** Aligned plain-text table rendering for the benchmark harness, so every
    reproduced paper table/figure prints as readable rows. *)

type t

(** [create ~title ~columns] starts an empty table. *)
val create : title:string -> columns:string list -> t

(** Append a row; must have as many cells as there are columns. *)
val add_row : t -> string list -> unit

(** Convenience: render a float with the given number of decimals. *)
val cell_f : ?decimals:int -> float -> string

val cell_i : int -> string

(** Render to a string (title, header, separator, rows). *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit
