open Reflex_engine

type t = {
  prng : Prng.t;
  capacity : int;
  mutable data : float array;
  mutable size : int;
  mutable seen : int;
  mutable sum : float;
  mutable sorted : bool;
}

let create ?(capacity = 100_000) prng =
  { prng; capacity; data = Array.make 256 0.0; size = 0; seen = 0; sum = 0.0; sorted = true }

let add t v =
  t.seen <- t.seen + 1;
  t.sum <- t.sum +. v;
  if t.size < t.capacity then begin
    if t.size = Array.length t.data then begin
      let ncap = min t.capacity (Array.length t.data * 2) in
      let narr = Array.make ncap 0.0 in
      Array.blit t.data 0 narr 0 t.size;
      t.data <- narr
    end;
    t.data.(t.size) <- v;
    t.size <- t.size + 1;
    t.sorted <- false
  end
  else begin
    let j = Prng.int t.prng t.seen in
    if j < t.capacity then begin
      t.data.(j) <- v;
      t.sorted <- false
    end
  end

let count t = t.seen

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.size in
    Array.sort compare sub;
    Array.blit sub 0 t.data 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then invalid_arg "Reservoir.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Reservoir.percentile: out of range";
  ensure_sorted t;
  let rank = p /. 100.0 *. float_of_int (t.size - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. float_of_int lo in
  (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)

let mean t = if t.seen = 0 then 0.0 else t.sum /. float_of_int t.seen

let values t =
  ensure_sorted t;
  Array.sub t.data 0 t.size
