(** Event-rate meter over simulated time.

    Counts marks and reports rates over the whole run or since the last
    checkpoint — used for IOPS, tokens/sec and bandwidth reporting. *)

open Reflex_engine

type t

val create : Sim.t -> t

(** [mark t ?n ()] counts [n] (default 1) events now. *)
val mark : t -> ?n:int -> unit -> unit

(** [mark_f t x] accumulates a float quantity (e.g. tokens, bytes). *)
val mark_f : t -> float -> unit

val count : t -> float

(** Events per second since creation. *)
val rate : t -> float

(** Events per second since the previous [checkpoint] (or creation), then
    restarts the window. *)
val checkpoint : t -> float

val reset : t -> unit
