(** A work-conserving multi-server FIFO resource with two priority levels.

    Models any component that serves jobs one at a time per server: a CPU
    core ([servers = 1]), the set of Flash dies ([servers = n_dies]), a NIC
    link, a kernel thread.  High-priority jobs always start before queued
    low-priority jobs, but service is non-preemptive: a long low-priority
    job (e.g. a Flash erase) blocks its server until it completes — this is
    exactly the mechanism behind read/write interference on Flash. *)

type t

type priority = High | Low

(** [create sim ~servers] with [servers >= 1]. *)
val create : Sim.t -> servers:int -> t

(** [submit t ~priority ~service f] enqueues a job needing [service] time.
    When the job completes, [f ~started ~finished] runs; [started] is when
    service began (so [started - submit-time] is the queueing delay). *)
val submit :
  t -> ?priority:priority -> service:Time.t -> (started:Time.t -> finished:Time.t -> unit) -> unit

(** Jobs currently being served. *)
val busy : t -> int

(** Jobs waiting in the two queues (high, low). *)
val queued : t -> int * int

(** Cumulative busy server-time, for utilization accounting. *)
val busy_time : t -> Time.t

(** Utilization in [0, 1] over the interval since creation. *)
val utilization : t -> float

(** Total jobs completed. *)
val completed : t -> int
