type priority = High | Low

type job = {
  service : Time.t;
  callback : started:Time.t -> finished:Time.t -> unit;
}

type t = {
  sim : Sim.t;
  servers : int;
  created_at : Time.t;
  high : job Queue.t;
  low : job Queue.t;
  mutable busy : int;
  mutable busy_time : Time.t;
  mutable completed : int;
}

let create sim ~servers =
  if servers < 1 then invalid_arg "Resource.create: servers < 1";
  {
    sim;
    servers;
    created_at = Sim.now sim;
    high = Queue.create ();
    low = Queue.create ();
    busy = 0;
    busy_time = Time.zero;
    completed = 0;
  }

let rec start t job =
  t.busy <- t.busy + 1;
  let started = Sim.now t.sim in
  ignore
    (Sim.after t.sim job.service (fun () ->
         let finished = Sim.now t.sim in
         t.busy <- t.busy - 1;
         t.busy_time <- Time.add t.busy_time job.service;
         t.completed <- t.completed + 1;
         dispatch t;
         job.callback ~started ~finished))

and dispatch t =
  if t.busy < t.servers then
    match Queue.take_opt t.high with
    | Some job -> start t job
    | None -> (
      match Queue.take_opt t.low with
      | Some job -> start t job
      | None -> ())

let submit t ?(priority = High) ~service callback =
  if Time.(service < Time.zero) then invalid_arg "Resource.submit: negative service";
  let job = { service; callback } in
  if t.busy < t.servers then start t job
  else
    match priority with
    | High -> Queue.add job t.high
    | Low -> Queue.add job t.low

let busy t = t.busy
let queued t = (Queue.length t.high, Queue.length t.low)
let busy_time t = t.busy_time

let utilization t =
  let elapsed = Time.diff (Sim.now t.sim) t.created_at in
  if Time.(elapsed <= Time.zero) then 0.0
  else Time.to_float_ns t.busy_time /. (Time.to_float_ns elapsed *. float_of_int t.servers)

let completed t = t.completed
