type t = int64

let zero = 0L
let infinity = Int64.max_int
let ns x = Int64.of_int x
let us x = Int64.mul (Int64.of_int x) 1_000L
let ms x = Int64.mul (Int64.of_int x) 1_000_000L
let sec x = Int64.mul (Int64.of_int x) 1_000_000_000L
let of_float_ns x = Int64.of_float (Float.round x)
let of_float_us x = of_float_ns (x *. 1e3)
let of_float_sec x = of_float_ns (x *. 1e9)
let to_float_ns t = Int64.to_float t
let to_float_us t = Int64.to_float t /. 1e3
let to_float_ms t = Int64.to_float t /. 1e6
let to_float_sec t = Int64.to_float t /. 1e9
let add = Int64.add
let sub = Int64.sub
let diff a b = Int64.sub a b

let scale t x = of_float_ns (Int64.to_float t *. x)

let max a b = if Int64.compare a b >= 0 then a else b
let min a b = if Int64.compare a b <= 0 then a else b
let compare = Int64.compare
let ( < ) a b = Int64.compare a b < 0
let ( <= ) a b = Int64.compare a b <= 0
let ( > ) a b = Int64.compare a b > 0
let ( >= ) a b = Int64.compare a b >= 0
let equal = Int64.equal

let pp fmt t =
  let f = Int64.to_float t in
  let open Stdlib in
  if Float.abs f < 1e3 then Format.fprintf fmt "%Ldns" t
  else if Float.abs f < 1e6 then Format.fprintf fmt "%.2fus" (f /. 1e3)
  else if Float.abs f < 1e9 then Format.fprintf fmt "%.2fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)

let to_string t = Format.asprintf "%a" pp t
