(** Simulated time, in integer nanoseconds.

    All simulation components share this representation.  Using [int64]
    nanoseconds (rather than float seconds) keeps event ordering exact and
    simulations bit-for-bit reproducible. *)

type t = int64

val zero : t
val infinity : t

(** {1 Constructors} *)

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

(** [of_float_us x] converts a (possibly fractional) number of microseconds,
    rounding to the nearest nanosecond. *)
val of_float_us : float -> t

val of_float_ns : float -> t
val of_float_sec : float -> t

(** {1 Conversions} *)

val to_float_us : t -> float
val to_float_ms : t -> float
val to_float_sec : t -> float
val to_float_ns : t -> float

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val diff : t -> t -> t

(** [scale t x] multiplies a duration by a float factor. *)
val scale : t -> float -> t

val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val equal : t -> t -> bool

(** Pretty-printer choosing a human unit (ns/us/ms/s). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
