(** Binary min-heap keyed by [(Time.t, sequence)].

    The sequence number breaks ties so that events scheduled for the same
    instant execute in FIFO order — essential for deterministic replay. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push t ~time ~seq v] inserts [v]. *)
val push : 'a t -> time:Time.t -> seq:int -> 'a -> unit

(** Smallest element, or [None] when empty. *)
val peek : 'a t -> (Time.t * int * 'a) option

(** Remove and return the smallest element. *)
val pop : 'a t -> (Time.t * int * 'a) option

(** [pop_if_le t ~until] pops the smallest element only if its time is
    [<= until]; returns [None] when the heap is empty or the minimum is
    beyond the horizon.  Equivalent to a {!peek} guard followed by
    {!pop}, in a single traversal — the simulator's hot path. *)
val pop_if_le : 'a t -> until:Time.t -> (Time.t * int * 'a) option

(** Empty the heap, dropping all references to stored values (the backing
    array is released, so cleared entries can be collected). *)
val clear : 'a t -> unit
