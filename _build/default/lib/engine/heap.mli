(** Binary min-heap keyed by [(Time.t, sequence)].

    The sequence number breaks ties so that events scheduled for the same
    instant execute in FIFO order — essential for deterministic replay. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push t ~time ~seq v] inserts [v]. *)
val push : 'a t -> time:Time.t -> seq:int -> 'a -> unit

(** Smallest element, or [None] when empty. *)
val peek : 'a t -> (Time.t * int * 'a) option

(** Remove and return the smallest element. *)
val pop : 'a t -> (Time.t * int * 'a) option

val clear : 'a t -> unit
