lib/engine/heap.mli: Time
