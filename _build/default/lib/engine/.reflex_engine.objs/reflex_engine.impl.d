lib/engine/reflex_engine.ml: Heap Prng Resource Sim Time
