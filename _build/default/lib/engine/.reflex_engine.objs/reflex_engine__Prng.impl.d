lib/engine/prng.ml: Array Float Hashtbl Int64
