lib/engine/prng.mli:
