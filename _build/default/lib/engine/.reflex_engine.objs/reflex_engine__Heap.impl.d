lib/engine/heap.ml: Array Time
