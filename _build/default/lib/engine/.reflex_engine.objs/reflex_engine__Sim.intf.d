lib/engine/sim.mli: Prng Time
