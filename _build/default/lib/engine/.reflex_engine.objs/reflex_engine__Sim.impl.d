lib/engine/sim.ml: Heap Printf Prng Time
