(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the simulation draws from an explicit
    stream so that experiments are reproducible and independent components
    do not perturb each other's randomness. *)

type t

(** [create seed] makes a new independent stream. *)
val create : int64 -> t

(** [split t] derives a new independent stream from [t] (advances [t]). *)
val split : t -> t

(** [copy t] duplicates the current state. *)
val copy : t -> t

(** Raw 64 random bits. *)
val bits64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [lo, hi). *)
val float_range : t -> float -> float -> float

(** [int t n] is uniform in [0, n-1]. Requires [n > 0]. *)
val int : t -> int -> int

(** Bernoulli trial with probability [p]. *)
val bool : t -> float -> bool

(** {1 Distributions} *)

(** Exponential with mean [mean]. *)
val exponential : t -> mean:float -> float

(** Standard normal via Box-Muller. *)
val normal : t -> mean:float -> stddev:float -> float

(** Lognormal such that the {e median} of the result is [median] and the
    shape parameter is [sigma] (stddev of the underlying normal). *)
val lognormal : t -> median:float -> sigma:float -> float

(** Bounded Pareto on [lo, hi] with shape [alpha]. *)
val pareto : t -> alpha:float -> lo:float -> hi:float -> float

(** Zipf-distributed integer in [0, n-1] with exponent [theta].
    Uses the rejection-inversion-free harmonic CDF (O(1) amortized via
    precomputation is not needed at our scales; this is O(log n)). *)
val zipf : t -> n:int -> theta:float -> int

(** Fisher-Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit
