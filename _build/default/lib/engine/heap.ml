type 'a entry = { time : Time.t; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

let create () = { arr = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let less a b =
  match Time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow t entry =
  let cap = Array.length t.arr in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let narr = Array.make ncap entry in
    Array.blit t.arr 0 narr 0 t.size;
    t.arr <- narr
  end

let push t ~time ~seq v =
  let entry = { time; seq; value = v } in
  grow t entry;
  t.arr.(t.size) <- entry;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t.arr.(!i) t.arr.(parent) then begin
      let tmp = t.arr.(!i) in
      t.arr.(!i) <- t.arr.(parent);
      t.arr.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek t =
  if t.size = 0 then None
  else
    let e = t.arr.(0) in
    Some (e.time, e.seq, e.value)

(* Remove and return the root; requires [t.size > 0]. *)
let remove_top t =
  let top = t.arr.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.arr.(0) <- t.arr.(t.size);
    (* Blank the vacated slot with a duplicate of a live entry so the heap
       does not pin the removed element (space leak on long runs).  When
       the heap drains to empty, slot 0 still references the returned
       element until the next push overwrites it — bounded to one entry. *)
    t.arr.(t.size) <- t.arr.(0);
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && less t.arr.(l) t.arr.(!smallest) then smallest := l;
      if r < t.size && less t.arr.(r) t.arr.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.arr.(!i) in
        t.arr.(!i) <- t.arr.(!smallest);
        t.arr.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  (top.time, top.seq, top.value)

let pop t = if t.size = 0 then None else Some (remove_top t)

(* Single-traversal peek+pop: pop the minimum only when it is due.  This
   is the event loop's hot path — one root comparison replaces the
   peek-then-pop double traversal. *)
let pop_if_le t ~until =
  if t.size = 0 then None
  else if Time.compare t.arr.(0).time until > 0 then None
  else Some (remove_top t)

let clear t =
  (* Drop the storage outright so stale entries cannot pin their payloads
     (the array slots beyond [size] would otherwise keep references). *)
  t.arr <- [||];
  t.size <- 0
