(** The paper's QoS machinery: SLOs, the request cost model, per-tenant
    token state, the shared global bucket, and the Algorithm-1 scheduler. *)

module Slo = Slo
module Cost_model = Cost_model
module Global_bucket = Global_bucket
module Tenant = Tenant
module Scheduler = Scheduler
