type t = {
  mutable level : float;
  mutable active : int list;
  marks : (int, unit) Hashtbl.t;
  mutable resets : int;
}

let create ~n_threads =
  if n_threads < 1 then invalid_arg "Global_bucket.create: n_threads < 1";
  { level = 0.0; active = List.init n_threads Fun.id; marks = Hashtbl.create 8; resets = 0 }

let add t x = if x > 0.0 then t.level <- t.level +. x

let try_take t d =
  if d <= 0.0 then 0.0
  else begin
    let taken = Float.min d t.level in
    t.level <- t.level -. taken;
    taken
  end

let level t = t.level

let mark_round t ~thread_id =
  if not (List.mem thread_id t.active) then
    invalid_arg "Global_bucket.mark_round: thread not active";
  Hashtbl.replace t.marks thread_id ();
  let all = List.for_all (Hashtbl.mem t.marks) t.active in
  if all then begin
    t.level <- 0.0;
    Hashtbl.reset t.marks;
    t.resets <- t.resets + 1
  end;
  all

let resets t = t.resets

let set_active_threads t ids =
  if ids = [] then invalid_arg "Global_bucket.set_active_threads: empty";
  t.active <- List.sort_uniq compare ids;
  Hashtbl.reset t.marks
