type tenant_class = Latency_critical | Best_effort

type t = { klass : tenant_class; latency_us : int; iops : float; read_pct : int }

let check_read_pct read_pct =
  if read_pct < 0 || read_pct > 100 then invalid_arg "Slo: read_pct must be in 0..100"

let latency_critical ~latency_us ~iops ~read_pct =
  if latency_us <= 0 then invalid_arg "Slo.latency_critical: non-positive latency";
  if iops <= 0.0 then invalid_arg "Slo.latency_critical: non-positive IOPS";
  check_read_pct read_pct;
  { klass = Latency_critical; latency_us; iops; read_pct }

let best_effort ?(read_pct = 100) () =
  check_read_pct read_pct;
  { klass = Best_effort; latency_us = 0; iops = 0.0; read_pct }

let is_latency_critical t = t.klass = Latency_critical
let read_ratio t = float_of_int t.read_pct /. 100.0

let pp fmt t =
  match t.klass with
  | Latency_critical ->
    Format.fprintf fmt "LC(%.0f IOPS, p95<=%dus, %d%%r)" t.iops t.latency_us t.read_pct
  | Best_effort -> Format.fprintf fmt "BE(%d%%r)" t.read_pct
