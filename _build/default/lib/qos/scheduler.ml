open Reflex_engine

type 'a submission = { tenant_id : int; cost : float; payload : 'a }

type 'a t = {
  neg_limit : float;
  donate_fraction : float;
  global : Global_bucket.t;
  thread_id : int;
  notify_control_plane : int -> unit;
  (* Tenant sets live in growable arrays: the first [lc_n]/[be_n] slots
     are the members, in insertion order.  Appends are amortized O(1)
     (the old [t.lc @ [tenant]] was O(n) per add, O(n^2) for a fleet). *)
  mutable lc : 'a Tenant.t array;
  mutable lc_n : int;
  mutable be : 'a Tenant.t array;
  mutable be_n : int;
  by_id : (int, 'a Tenant.t) Hashtbl.t; (* O(1) lookup on the request path *)
  mutable be_cursor : int; (* round-robin start for fairness *)
  mutable prev_sched_time : Time.t option;
  mutable lc_generated : float;
  (* Incrementally maintained sum of every member tenant's demand, so
     [backlog] is O(1) and allocation-free on the per-cycle path (the
     dataplane consults it every finish_cycle).  Updated via each
     tenant's demand listener, which also covers direct queue drains
     (detach). *)
  mutable backlog_agg : float;
}

let create ?(neg_limit = -50.0) ?(donate_fraction = 0.9) ~global ~thread_id
    ?(notify_control_plane = fun _ -> ()) () =
  if neg_limit > 0.0 then invalid_arg "Scheduler.create: neg_limit must be <= 0";
  if donate_fraction < 0.0 || donate_fraction > 1.0 then
    invalid_arg "Scheduler.create: donate_fraction in [0,1]";
  {
    neg_limit;
    donate_fraction;
    global;
    thread_id;
    notify_control_plane;
    lc = [||];
    lc_n = 0;
    be = [||];
    be_n = 0;
    by_id = Hashtbl.create 64;
    be_cursor = 0;
    prev_sched_time = None;
    lc_generated = 0.0;
    backlog_agg = 0.0;
  }

(* Append [x] into the first free slot of [arr] (of which [n] are live),
   doubling capacity when full; returns the array to store back. *)
let grow_push arr n x =
  let arr =
    if n = Array.length arr then begin
      let narr = Array.make (if n = 0 then 8 else 2 * n) x in
      Array.blit arr 0 narr 0 n;
      narr
    end
    else arr
  in
  arr.(n) <- x;
  arr

let add_tenant t tenant =
  if Hashtbl.mem t.by_id (Tenant.id tenant) then
    invalid_arg "Scheduler.add_tenant: duplicate tenant id";
  Hashtbl.replace t.by_id (Tenant.id tenant) tenant;
  if Tenant.is_latency_critical tenant then begin
    t.lc <- grow_push t.lc t.lc_n tenant;
    t.lc_n <- t.lc_n + 1
  end
  else begin
    t.be <- grow_push t.be t.be_n tenant;
    t.be_n <- t.be_n + 1
  end;
  t.backlog_agg <- t.backlog_agg +. Tenant.demand tenant;
  Tenant.set_demand_listener tenant (fun delta -> t.backlog_agg <- t.backlog_agg +. delta)

(* Single-pass, order-preserving removal from the live prefix of [arr].
   Returns the new live count.  The vacated slot is re-pointed at a
   still-live tenant (or the array dropped when it empties) so the
   scheduler does not pin removed tenants. *)
let remove_from arr n tenant_id =
  let j = ref 0 in
  for i = 0 to n - 1 do
    if Tenant.id arr.(i) <> tenant_id then begin
      if !j < i then arr.(!j) <- arr.(i);
      incr j
    end
  done;
  (if !j < n && !j > 0 then arr.(!j) <- arr.(0));
  !j

let remove_tenant t tenant_id =
  match Hashtbl.find_opt t.by_id tenant_id with
  | None -> ()
  | Some tenant ->
    Hashtbl.remove t.by_id tenant_id;
    Tenant.clear_demand_listener tenant;
    t.backlog_agg <- t.backlog_agg -. Tenant.demand tenant;
    if t.backlog_agg < 0.0 then t.backlog_agg <- 0.0;
    if Tenant.is_latency_critical tenant then begin
      t.lc_n <- remove_from t.lc t.lc_n tenant_id;
      if t.lc_n = 0 then t.lc <- [||]
    end
    else begin
      t.be_n <- remove_from t.be t.be_n tenant_id;
      if t.be_n = 0 then t.be <- [||];
      (* Keep the historical cursor behavior: clamp into the shrunk set. *)
      if t.be_n > 0 then t.be_cursor <- t.be_cursor mod t.be_n else t.be_cursor <- 0
    end

let tenants t =
  List.init t.lc_n (fun i -> t.lc.(i)) @ List.init t.be_n (fun i -> t.be.(i))

let find_tenant t tenant_id = Hashtbl.find_opt t.by_id tenant_id
let tenant_count t = Hashtbl.length t.by_id

let enqueue t ~tenant_id ~cost req =
  match find_tenant t tenant_id with
  | Some tenant -> Tenant.enqueue tenant ~cost req
  | None -> raise Not_found

(* O(1), allocation-free: the listener-maintained aggregate.  Clamp tiny
   negative float drift so idle detection stays exact. *)
let backlog t = if t.backlog_agg <= 0.0 then 0.0 else t.backlog_agg
let lc_tokens_generated t = t.lc_generated

(* Submit requests off [tenant]'s queue while there is demand and the
   balance stays above [floor]; returns the count submitted. *)
let submit_while tenant ~floor ~submit =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    if Tenant.demand tenant > 0.0 && Tenant.tokens tenant > floor then begin
      match Tenant.dequeue tenant with
      | Some (cost, payload) ->
        Tenant.spend_tokens tenant cost;
        Tenant.note_submitted tenant cost;
        submit { tenant_id = Tenant.id tenant; cost; payload };
        incr n
      | None -> continue := false
    end
    else continue := false
  done;
  !n

(* BE variant: a request is submitted only if the tenant can fully pay. *)
let submit_admissible tenant ~submit =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Tenant.peek_cost tenant with
    | Some cost when cost <= Tenant.tokens tenant -> (
      match Tenant.dequeue tenant with
      | Some (cost, payload) ->
        Tenant.spend_tokens tenant cost;
        Tenant.note_submitted tenant cost;
        submit { tenant_id = Tenant.id tenant; cost; payload };
        incr n
      | None -> continue := false)
    | _ -> continue := false
  done;
  !n

let schedule t ~now ~submit =
  let time_delta =
    match t.prev_sched_time with
    | None -> 0.0
    | Some prev -> Time.to_float_sec (Time.diff now prev)
  in
  t.prev_sched_time <- Some now;
  let submitted = ref 0 in
  (* Latency-critical tenants first (Algorithm 1, lines 4-12). *)
  for i = 0 to t.lc_n - 1 do
    let tenant = t.lc.(i) in
    let grant = Tenant.token_rate tenant *. time_delta in
    Tenant.add_tokens tenant grant;
    Tenant.record_grant tenant grant;
    t.lc_generated <- t.lc_generated +. grant;
    if Tenant.tokens tenant < t.neg_limit then t.notify_control_plane (Tenant.id tenant);
    submitted := !submitted + submit_while tenant ~floor:t.neg_limit ~submit;
    let pos_limit = Tenant.pos_limit tenant in
    if Tenant.tokens tenant > pos_limit then begin
      let donation = Tenant.tokens tenant *. t.donate_fraction in
      Global_bucket.add t.global donation;
      Tenant.spend_tokens tenant donation
    end
  done;
  (* Best-effort tenants in round-robin order (lines 13-21). *)
  let n_be = t.be_n in
  for k = 0 to n_be - 1 do
    let tenant = t.be.((t.be_cursor + k) mod n_be) in
    Tenant.add_tokens tenant (Tenant.token_rate tenant *. time_delta);
    let deficit = Tenant.demand tenant -. Tenant.tokens tenant in
    if deficit > 0.0 then Tenant.add_tokens tenant (Global_bucket.try_take t.global deficit);
    submitted := !submitted + submit_admissible tenant ~submit;
    (* DRR-inspired: no token hoarding while idle. *)
    if Tenant.tokens tenant > 0.0 && Tenant.demand tenant = 0.0 then
      Global_bucket.add t.global (Tenant.drain_tokens tenant)
  done;
  if n_be > 0 then t.be_cursor <- (t.be_cursor + 1) mod n_be;
  ignore (Global_bucket.mark_round t.global ~thread_id:t.thread_id);
  !submitted
