open Reflex_engine

type 'a submission = { tenant_id : int; cost : float; payload : 'a }

type 'a t = {
  neg_limit : float;
  donate_fraction : float;
  global : Global_bucket.t;
  thread_id : int;
  notify_control_plane : int -> unit;
  mutable lc : 'a Tenant.t list;
  mutable be : 'a Tenant.t array;
  by_id : (int, 'a Tenant.t) Hashtbl.t; (* O(1) lookup on the request path *)
  mutable be_cursor : int; (* round-robin start for fairness *)
  mutable prev_sched_time : Time.t option;
  mutable lc_generated : float;
}

let create ?(neg_limit = -50.0) ?(donate_fraction = 0.9) ~global ~thread_id
    ?(notify_control_plane = fun _ -> ()) () =
  if neg_limit > 0.0 then invalid_arg "Scheduler.create: neg_limit must be <= 0";
  if donate_fraction < 0.0 || donate_fraction > 1.0 then
    invalid_arg "Scheduler.create: donate_fraction in [0,1]";
  {
    neg_limit;
    donate_fraction;
    global;
    thread_id;
    notify_control_plane;
    lc = [];
    be = [||];
    by_id = Hashtbl.create 64;
    be_cursor = 0;
    prev_sched_time = None;
    lc_generated = 0.0;
  }

let add_tenant t tenant =
  if Hashtbl.mem t.by_id (Tenant.id tenant) then
    invalid_arg "Scheduler.add_tenant: duplicate tenant id";
  Hashtbl.replace t.by_id (Tenant.id tenant) tenant;
  if Tenant.is_latency_critical tenant then t.lc <- t.lc @ [ tenant ]
  else t.be <- Array.append t.be [| tenant |]

let remove_tenant t tenant_id =
  if Hashtbl.mem t.by_id tenant_id then begin
    Hashtbl.remove t.by_id tenant_id;
    t.lc <- List.filter (fun x -> Tenant.id x <> tenant_id) t.lc;
    t.be <- Array.of_list (List.filter (fun x -> Tenant.id x <> tenant_id) (Array.to_list t.be));
    if Array.length t.be > 0 then t.be_cursor <- t.be_cursor mod Array.length t.be
    else t.be_cursor <- 0
  end

let tenants t = t.lc @ Array.to_list t.be
let find_tenant t tenant_id = Hashtbl.find_opt t.by_id tenant_id
let tenant_count t = Hashtbl.length t.by_id

let enqueue t ~tenant_id ~cost req =
  match find_tenant t tenant_id with
  | Some tenant -> Tenant.enqueue tenant ~cost req
  | None -> raise Not_found

let backlog t = List.fold_left (fun acc x -> acc +. Tenant.demand x) 0.0 (tenants t)
let lc_tokens_generated t = t.lc_generated

(* Submit requests off [tenant]'s queue while there is demand and the
   balance stays above [floor]; returns the count submitted. *)
let submit_while tenant ~floor ~submit =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    if Tenant.demand tenant > 0.0 && Tenant.tokens tenant > floor then begin
      match Tenant.dequeue tenant with
      | Some (cost, payload) ->
        Tenant.spend_tokens tenant cost;
        Tenant.note_submitted tenant cost;
        submit { tenant_id = Tenant.id tenant; cost; payload };
        incr n
      | None -> continue := false
    end
    else continue := false
  done;
  !n

(* BE variant: a request is submitted only if the tenant can fully pay. *)
let submit_admissible tenant ~submit =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Tenant.peek_cost tenant with
    | Some cost when cost <= Tenant.tokens tenant ->
      (match Tenant.dequeue tenant with
      | Some (cost, payload) ->
        Tenant.spend_tokens tenant cost;
        Tenant.note_submitted tenant cost;
        submit { tenant_id = Tenant.id tenant; cost; payload };
        incr n
      | None -> continue := false)
    | _ -> continue := false
  done;
  !n

let schedule t ~now ~submit =
  let time_delta =
    match t.prev_sched_time with
    | None -> 0.0
    | Some prev -> Time.to_float_sec (Time.diff now prev)
  in
  t.prev_sched_time <- Some now;
  let submitted = ref 0 in
  (* Latency-critical tenants first (Algorithm 1, lines 4-12). *)
  List.iter
    (fun tenant ->
      let grant = Tenant.token_rate tenant *. time_delta in
      Tenant.add_tokens tenant grant;
      Tenant.record_grant tenant grant;
      t.lc_generated <- t.lc_generated +. grant;
      if Tenant.tokens tenant < t.neg_limit then t.notify_control_plane (Tenant.id tenant);
      submitted := !submitted + submit_while tenant ~floor:t.neg_limit ~submit;
      let pos_limit = Tenant.pos_limit tenant in
      if Tenant.tokens tenant > pos_limit then begin
        let donation = Tenant.tokens tenant *. t.donate_fraction in
        Global_bucket.add t.global donation;
        Tenant.spend_tokens tenant donation
      end)
    t.lc;
  (* Best-effort tenants in round-robin order (lines 13-21). *)
  let n_be = Array.length t.be in
  for k = 0 to n_be - 1 do
    let tenant = t.be.((t.be_cursor + k) mod n_be) in
    Tenant.add_tokens tenant (Tenant.token_rate tenant *. time_delta);
    let deficit = Tenant.demand tenant -. Tenant.tokens tenant in
    if deficit > 0.0 then Tenant.add_tokens tenant (Global_bucket.try_take t.global deficit);
    submitted := !submitted + submit_admissible tenant ~submit;
    (* DRR-inspired: no token hoarding while idle. *)
    if Tenant.tokens tenant > 0.0 && Tenant.demand tenant = 0.0 then
      Global_bucket.add t.global (Tenant.drain_tokens tenant)
  done;
  if n_be > 0 then t.be_cursor <- (t.be_cursor + 1) mod n_be;
  ignore (Global_bucket.mark_round t.global ~thread_id:t.thread_id);
  !submitted
