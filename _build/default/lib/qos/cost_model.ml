open Reflex_flash

type t = { write_cost : float; ro_read_cost : float }

let of_profile (p : Device_profile.t) =
  { write_cost = p.write_cost; ro_read_cost = 1.0 /. p.ro_speedup }

let of_fitted (f : Calibrate.fitted) =
  { write_cost = f.write_cost; ro_read_cost = f.ro_read_cost }

let request_cost t ~kind ~bytes ~read_only =
  let sectors = float_of_int (Io_op.sectors_of_bytes bytes) in
  match (kind : Io_op.kind) with
  | Read -> sectors *. (if read_only then t.ro_read_cost else 1.0)
  | Write -> sectors *. t.write_cost

let weighted_rate t ~iops ~read_ratio =
  if read_ratio < 0.0 || read_ratio > 1.0 then invalid_arg "Cost_model.weighted_rate: read_ratio";
  iops *. (read_ratio +. ((1.0 -. read_ratio) *. t.write_cost))

let pp fmt t =
  Format.fprintf fmt "C(write)=%.1f C(read,100%%)=%.2f" t.write_cost t.ro_read_cost
