(** Service-level objectives (paper §3.2).

    A latency-critical (LC) tenant reserves a tail-read-latency bound at a
    given IOPS and read/write ratio; a best-effort (BE) tenant
    opportunistically uses whatever throughput is left. *)

type tenant_class = Latency_critical | Best_effort

type t = {
  klass : tenant_class;
  latency_us : int;  (** p95 read-latency bound (LC only) *)
  iops : float;  (** reserved IOPS (LC only) *)
  read_pct : int;  (** declared read percentage, 0..100 *)
}

(** [latency_critical ~latency_us ~iops ~read_pct] — e.g. the paper's
    example tenant: 50K IOPS, 200us p95, 80% reads.
    Raises [Invalid_argument] on non-positive bounds or bad percentages. *)
val latency_critical : latency_us:int -> iops:float -> read_pct:int -> t

val best_effort : ?read_pct:int -> unit -> t

val is_latency_critical : t -> bool

(** Declared read ratio in [0, 1]. *)
val read_ratio : t -> float

val pp : Format.formatter -> t -> unit
