(** The global token bucket shared by all dataplane threads (paper
    §3.2.2/§4.1).

    LC tenants donate spare tokens here; BE tenants on any thread may
    claim them.  Threads access it with atomic read-modify-write
    operations in the paper; in this single-threaded simulation the
    operations are plain, but the interface preserves the fetch-and-add
    shape.  The bucket resets once every thread has completed at least one
    scheduling round since the last reset — the last thread to mark
    performs the reset — bounding the burst BE tenants can accumulate. *)

type t

val create : n_threads:int -> t

(** Donate tokens (atomic increment). *)
val add : t -> float -> unit

(** [try_take t d] removes and returns up to [d] tokens (atomic
    decrement bounded below by zero). *)
val try_take : t -> float -> float

val level : t -> float

(** Mark that [thread_id] finished a scheduling round.  When all threads
    have marked since the last reset, the bucket is zeroed.  Returns [true]
    when this call performed the reset. *)
val mark_round : t -> thread_id:int -> bool

(** Total resets so far (observability). *)
val resets : t -> int

(** Replace the set of thread ids whose marks gate the periodic reset —
    used when the control plane grows or shrinks the dataplane (paper
    §4.3).  Pending marks from removed threads are discarded. *)
val set_active_threads : t -> int list -> unit
