(** The request cost model (paper §3.2.1).

    [cost = ceil(size / 4KB) * C(I/O type, r)] where one token is the cost
    of a 4KB random read under a mixed load.  Reads are discounted when
    the device-wide load is read-only (r = 100%); writes cost 10-20x. *)

type t = {
  write_cost : float;  (** C(write, r < 100%) in tokens *)
  ro_read_cost : float;  (** C(read, r = 100%) in tokens *)
}

(** Cost model from a device profile's nominal parameters. *)
val of_profile : Reflex_flash.Device_profile.t -> t

(** Cost model from a measured calibration (paper: calibrated per device
    type, re-calibrated after wear). *)
val of_fitted : Reflex_flash.Calibrate.fitted -> t

(** [request_cost t ~kind ~bytes ~read_only] in tokens.  [read_only] is
    whether the whole device currently sees a pure-read load. *)
val request_cost : t -> kind:Reflex_flash.Io_op.kind -> bytes:int -> read_only:bool -> float

(** Token rate that satisfies an LC reservation of [iops] at [read_ratio]
    (paper's example: 100K IOPS at 80% reads with write cost 10
    = 280K tokens/s).  Assumes mixed-load read cost of 1. *)
val weighted_rate : t -> iops:float -> read_ratio:float -> float

val pp : Format.formatter -> t -> unit
