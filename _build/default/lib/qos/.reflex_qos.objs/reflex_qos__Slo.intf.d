lib/qos/slo.mli: Format
