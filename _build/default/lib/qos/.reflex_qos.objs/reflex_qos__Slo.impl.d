lib/qos/slo.ml: Format
