lib/qos/tenant.ml: Array Option Queue Slo
