lib/qos/cost_model.mli: Format Reflex_flash
