lib/qos/global_bucket.ml: Float Fun Hashtbl List
