lib/qos/scheduler.mli: Global_bucket Reflex_engine Tenant
