lib/qos/scheduler.ml: Array Global_bucket Hashtbl List Reflex_engine Tenant Time
