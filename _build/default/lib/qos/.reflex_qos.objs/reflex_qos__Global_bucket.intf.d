lib/qos/global_bucket.mli:
