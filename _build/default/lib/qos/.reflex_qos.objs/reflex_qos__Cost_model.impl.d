lib/qos/cost_model.ml: Calibrate Device_profile Format Io_op Reflex_flash
