lib/qos/tenant.mli: Slo
