lib/qos/reflex_qos.ml: Cost_model Global_bucket Scheduler Slo Tenant
