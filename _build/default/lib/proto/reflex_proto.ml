(** ReFlex wire protocol: message types (paper Table 1), binary codec and
    incremental stream framing. *)

module Message = Message
module Codec = Codec
module Framer = Framer
