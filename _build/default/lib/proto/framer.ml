(* A simple growable ring: bytes are appended at [write_pos] and consumed
   from [read_pos]; the prefix is compacted when it grows large. *)

type t = { mutable buf : bytes; mutable read_pos : int; mutable write_pos : int }

let create () = { buf = Bytes.create 4096; read_pos = 0; write_pos = 0 }

let buffered t = t.write_pos - t.read_pos

let compact t =
  if t.read_pos > 0 then begin
    Bytes.blit t.buf t.read_pos t.buf 0 (buffered t);
    t.write_pos <- buffered t;
    t.read_pos <- 0
  end

let ensure_room t n =
  if t.write_pos + n > Bytes.length t.buf then begin
    compact t;
    if t.write_pos + n > Bytes.length t.buf then begin
      let ncap = max (t.write_pos + n) (2 * Bytes.length t.buf) in
      let nbuf = Bytes.create ncap in
      Bytes.blit t.buf 0 nbuf 0 t.write_pos;
      t.buf <- nbuf
    end
  end

let feed t chunk ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length chunk then
    invalid_arg "Framer.feed: bad slice";
  ensure_room t len;
  Bytes.blit chunk off t.buf t.write_pos len;
  t.write_pos <- t.write_pos + len

let pop t =
  if buffered t < Codec.header_size then None
  else begin
    (* Peek the header to learn the payload length, then check whether the
       full message has arrived. *)
    let total = Codec.peek_total t.buf t.read_pos in
    if buffered t < total then None
    else begin
      let msg, consumed = Codec.decode t.buf t.read_pos in
      t.read_pos <- t.read_pos + consumed;
      if t.read_pos = t.write_pos then begin
        t.read_pos <- 0;
        t.write_pos <- 0
      end;
      Some msg
    end
  end

let pop_all t =
  let rec loop acc = match pop t with Some m -> loop (m :: acc) | None -> List.rev acc in
  loop []
