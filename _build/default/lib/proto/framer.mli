(** Incremental stream decoder.

    TCP delivers a byte stream; the framer accumulates arbitrary chunks
    and yields complete messages, handling headers and payloads split
    across segment boundaries. *)

type t

val create : unit -> t

(** Append a chunk of received bytes. *)
val feed : t -> bytes -> off:int -> len:int -> unit

(** Next complete message, if one is buffered.
    Raises [Invalid_argument] on a malformed stream (bad magic etc). *)
val pop : t -> Message.t option

(** Drain all currently complete messages. *)
val pop_all : t -> Message.t list

(** Bytes buffered but not yet consumed by [pop]. *)
val buffered : t -> int
