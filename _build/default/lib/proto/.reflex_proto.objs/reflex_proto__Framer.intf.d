lib/proto/framer.mli: Message
