lib/proto/framer.ml: Bytes Codec List
