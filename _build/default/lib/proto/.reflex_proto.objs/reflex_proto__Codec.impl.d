lib/proto/codec.ml: Bytes Int64 Message Printf
