lib/proto/reflex_proto.ml: Codec Framer Message
