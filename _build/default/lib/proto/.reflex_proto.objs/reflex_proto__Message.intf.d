lib/proto/message.mli: Format
