lib/proto/message.ml: Format
