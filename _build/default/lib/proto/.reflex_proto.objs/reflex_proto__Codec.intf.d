lib/proto/codec.mli: Message
