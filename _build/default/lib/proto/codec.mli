(** Binary encoding of {!Message.t}.

    Fixed little-endian header followed by an optional data payload
    (write-request data, read-response data).  The per-request overhead of
    a 4KB access is [header_size] bytes, matching the paper's observation
    that ReFlex requests add only tens of bytes per 4KB. *)

(** Bytes of every message header on the wire. *)
val header_size : int

(** Total wire size of a message: header plus payload. *)
val encoded_size : Message.t -> int

(** [encode msg] allocates and fills the wire representation.  Payload
    bytes (if any) are zero-filled — the simulator tracks data by length,
    not content. *)
val encode : Message.t -> bytes

(** [encode_into msg buf off] writes at [off], returning the bytes
    written.  Raises [Invalid_argument] if [buf] is too small. *)
val encode_into : Message.t -> bytes -> int -> int

(** [peek_total buf off] reads just the header at [off] and returns the
    total wire size of the message (header + payload) without touching the
    payload.  Raises like {!decode} on a malformed header. *)
val peek_total : bytes -> int -> int

(** [decode buf off] parses one message starting at [off]; returns the
    message and total bytes consumed (header + payload).
    Raises [Invalid_argument] on bad magic, unknown opcode, or short
    buffer. *)
val decode : bytes -> int -> Message.t * int
