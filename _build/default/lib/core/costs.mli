(** CPU cost parameters of a ReFlex dataplane thread.

    These constants reproduce the paper's per-core throughput: roughly
    1.15us of CPU per request end-to-end gives ~850K IOPS per core (§5.3),
    with ~20% of a loaded thread in TCP/IP processing and 2-8%% in QoS
    scheduling depending on tenant count. *)

open Reflex_engine

type t = {
  rx_per_msg : Time.t;  (** Ethernet + TCP/IP receive processing *)
  parse_per_msg : Time.t;  (** user-level parse, ACL check, syscall *)
  submit_per_req : Time.t;  (** NVMe submission-queue doorbell *)
  complete_per_req : Time.t;  (** completion event, send syscall, TCP/IP tx *)
  sched_base : Time.t;  (** fixed cost of one QoS scheduling round *)
  sched_per_tenant : Time.t;  (** added round cost per registered tenant *)
  batch_max : int;  (** adaptive batching cap (paper: 64) *)
  idle_sched_period : Time.t;
      (** when rate-limited backlog waits with no other work, the thread
          re-enters the scheduler at this interval (paper: rounds every
          0.5-100us; the control plane keeps it under 5%% of the strictest
          SLO) *)
  conn_penalty_threshold : int;
      (** connections a core can hold in LLC before TCP state misses slow
          processing (paper §5.5: degradation past ~5K connections) *)
  conn_penalty_slope : float;
      (** relative extra CPU per message per connection beyond the
          threshold *)
}

val default : t

(** Cost multiplier from connection-state cache pressure. *)
val conn_factor : t -> conns:int -> float
