lib/core/costs.ml: Reflex_engine Time
