lib/core/acl.mli: Reflex_flash
