lib/core/control_plane.mli: Cost_model Reflex_flash Reflex_qos Slo
