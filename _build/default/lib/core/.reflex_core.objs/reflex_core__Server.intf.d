lib/core/server.mli: Acl Control_plane Costs Fabric Message Reflex_engine Reflex_flash Reflex_net Reflex_proto Reflex_qos Sim Tcp_conn Time
