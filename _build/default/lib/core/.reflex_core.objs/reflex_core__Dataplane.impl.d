lib/core/dataplane.ml: Cost_model Costs Hashtbl Io_op List Nvme_model Queue Queue_pair Reflex_engine Reflex_flash Reflex_qos Resource Scheduler Sim Tenant Time
