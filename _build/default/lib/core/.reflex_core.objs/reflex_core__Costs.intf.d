lib/core/costs.mli: Reflex_engine Time
