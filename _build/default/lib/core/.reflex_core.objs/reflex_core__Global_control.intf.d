lib/core/global_control.mli: Reflex_qos Server Slo
