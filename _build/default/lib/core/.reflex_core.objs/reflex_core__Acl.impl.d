lib/core/acl.ml: Hashtbl Int64 Reflex_flash
