lib/core/dataplane.mli: Cost_model Costs Global_bucket Io_op Nvme_model Queue_pair Reflex_engine Reflex_flash Reflex_qos Sim Slo Time
