lib/core/reflex_core.ml: Acl Control_plane Costs Dataplane Global_control Server
