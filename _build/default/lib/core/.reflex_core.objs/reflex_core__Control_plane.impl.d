lib/core/control_plane.ml: Cost_model Float Hashtbl Option Reflex_flash Reflex_qos Slo
