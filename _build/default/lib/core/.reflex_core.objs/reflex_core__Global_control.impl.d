lib/core/global_control.ml: Control_plane List Option Reflex_qos Server Slo
