type permission = { lba_lo : int64; lba_hi : int64; can_read : bool; can_write : bool }

type policy = Default_deny | Permissive of permission

type t = { mutable policy : policy; grants : (int, permission) Hashtbl.t }

let create () = { policy = Default_deny; grants = Hashtbl.create 16 }

let create_permissive ?(lba_hi = Int64.max_int) () =
  {
    policy = Permissive { lba_lo = 0L; lba_hi; can_read = true; can_write = true };
    grants = Hashtbl.create 16;
  }

let grant t ~tenant perm = Hashtbl.replace t.grants tenant perm
let revoke t ~tenant = Hashtbl.remove t.grants tenant

type verdict = Allowed | Denied_permission | Denied_range

let lookup t ~tenant =
  match Hashtbl.find_opt t.grants tenant with
  | Some p -> Some p
  | None -> ( match t.policy with Permissive p -> Some p | Default_deny -> None)

let check t ~tenant ~kind ~lba ~lba_count =
  match lookup t ~tenant with
  | None -> Denied_permission
  | Some p ->
    let allowed_op =
      match (kind : Reflex_flash.Io_op.kind) with Read -> p.can_read | Write -> p.can_write
    in
    if not allowed_op then Denied_permission
    else begin
      let last = Int64.add lba (Int64.of_int (lba_count - 1)) in
      if Int64.compare lba p.lba_lo >= 0 && Int64.compare last p.lba_hi < 0 then Allowed
      else Denied_range
    end

let connection_allowed t ~tenant = lookup t ~tenant <> None
