open Reflex_engine

type t = {
  rx_per_msg : Time.t;
  parse_per_msg : Time.t;
  submit_per_req : Time.t;
  complete_per_req : Time.t;
  sched_base : Time.t;
  sched_per_tenant : Time.t;
  batch_max : int;
  idle_sched_period : Time.t;
  conn_penalty_threshold : int;
  conn_penalty_slope : float;
}

let default =
  {
    rx_per_msg = Time.ns 450;
    parse_per_msg = Time.ns 200;
    submit_per_req = Time.ns 100;
    complete_per_req = Time.ns 400;
    sched_base = Time.ns 300;
    sched_per_tenant = Time.ns 40;
    batch_max = 64;
    idle_sched_period = Time.us 10;
    conn_penalty_threshold = 4096;
    conn_penalty_slope = 1.5e-4;
  }

let conn_factor t ~conns =
  if conns <= t.conn_penalty_threshold then 1.0
  else 1.0 +. (float_of_int (conns - t.conn_penalty_threshold) *. t.conn_penalty_slope)
