(** The ReFlex server — the paper's primary contribution.

    - {!Costs}: dataplane CPU cost constants (~850K IOPS/core)
    - {!Dataplane}: per-core two-step run-to-completion threads (Figure 2)
    - {!Acl}: tenant/namespace access control (§4.1)
    - {!Control_plane}: admission control, token rates, thread scaling (§4.3)
    - {!Server}: the protocol-speaking facade tying it all together *)

module Costs = Costs
module Dataplane = Dataplane
module Acl = Acl
module Control_plane = Control_plane
module Server = Server
module Global_control = Global_control
