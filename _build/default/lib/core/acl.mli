(** Access-control policy (paper §4.1 "Security model").

    ReFlex checks whether a client may open a connection to a tenant and
    whether a tenant has read/write permission over an NVMe namespace
    (a range of logical blocks). *)

type permission = { lba_lo : int64; lba_hi : int64; can_read : bool; can_write : bool }

type t

(** [create ()] — default-deny: tenants must be granted a namespace. *)
val create : unit -> t

(** [create_permissive ~lba_hi] grants every tenant read/write over
    [0, lba_hi). *)
val create_permissive : ?lba_hi:int64 -> unit -> t

val grant : t -> tenant:int -> permission -> unit
val revoke : t -> tenant:int -> unit

type verdict = Allowed | Denied_permission | Denied_range

(** Check one I/O against the policy.  [lba_count] is in 4KB blocks. *)
val check :
  t -> tenant:int -> kind:Reflex_flash.Io_op.kind -> lba:int64 -> lba_count:int -> verdict

(** May this tenant id open a connection at all? *)
val connection_allowed : t -> tenant:int -> bool
