(* Command-line driver: run any paper experiment by id.

     reflex_sim list
     reflex_sim run fig5 [--full]
     reflex_sim run all  [--full]                                    *)

open Cmdliner
open Reflex_experiments

let experiments : (string * string * (Common.mode -> unit)) list =
  [
    ( "fig1",
      "p95 read latency vs IOPS per read/write ratio (device A)",
      fun mode -> Reflex_stats.Table.print (Fig1.to_table (Fig1.run ~mode ())) );
    ( "fig3",
      "request cost models and calibration fits for devices A/B/C",
      fun mode -> List.iter Reflex_stats.Table.print (Fig3.to_tables (Fig3.run ~mode ())) );
    ( "table2",
      "unloaded 4KB latency across the six access paths",
      fun mode -> Reflex_stats.Table.print (Table2.to_table (Table2.run ~mode ())) );
    ( "fig4",
      "latency vs throughput, 1KB reads: Local/ReFlex/Libaio x 1/2 threads",
      fun mode -> Reflex_stats.Table.print (Fig4.to_table (Fig4.run ~mode ())) );
    ( "fig5",
      "QoS isolation: 2 LC + 2 BE tenants, scheduler on/off, 2 scenarios",
      fun mode -> Reflex_stats.Table.print (Fig5.to_table (Fig5.run ~mode ())) );
    ( "fig6a",
      "multi-core scaling with per-core LC tenants",
      fun mode -> Reflex_stats.Table.print (Fig6.cores_table (Fig6.run_cores ~mode ())) );
    ( "fig6b",
      "tenant scaling (100 IOPS per tenant)",
      fun mode -> Reflex_stats.Table.print (Fig6.tenants_table (Fig6.run_tenants ~mode ())) );
    ( "fig6c",
      "TCP connection scaling on one core",
      fun mode -> Reflex_stats.Table.print (Fig6.conns_table (Fig6.run_conns ~mode ())) );
    ( "fig7a",
      "FIO latency-throughput over local/iSCSI/ReFlex block devices",
      fun mode -> Reflex_stats.Table.print (Fig7.fio_table (Fig7.run_fio ~mode ())) );
    ( "fig7b",
      "FlashX graph analytics slowdown vs local",
      fun mode -> Reflex_stats.Table.print (Fig7.flashx_table (Fig7.run_flashx ~mode ())) );
    ( "fig7c",
      "RocksDB slowdown vs local",
      fun mode -> Reflex_stats.Table.print (Fig7.rocksdb_table (Fig7.run_rocksdb ~mode ())) );
    ( "ablations",
      "design-choice studies: NEG_LIMIT, donation fraction, batching cap, cost model",
      fun mode ->
        Reflex_stats.Table.print (Ablations.neg_limit_table (Ablations.run_neg_limit ~mode ()));
        Reflex_stats.Table.print (Ablations.donation_table (Ablations.run_donation ~mode ()));
        Reflex_stats.Table.print (Ablations.batching_table (Ablations.run_batching ~mode ()));
        Reflex_stats.Table.print (Ablations.cost_model_table (Ablations.run_cost_model ~mode ()))
    );
  ]

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter (fun (id, desc, _) -> Printf.printf "%-8s %s\n" id desc) experiments
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment (or 'all') and print its table(s)." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc:"experiment id")
  in
  let full_arg =
    Arg.(value & flag & info [ "full" ] ~doc:"longer windows and denser sweeps")
  in
  let run id full =
    let mode = if full then Common.Full else Common.Quick in
    if id = "all" then begin
      List.iter (fun (_, _, f) -> f mode) experiments;
      `Ok ()
    end
    else
      match List.find_opt (fun (eid, _, _) -> eid = id) experiments with
      | Some (_, _, f) ->
        f mode;
        `Ok ()
      | None -> `Error (false, "unknown experiment: " ^ id ^ " (try 'list')")
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ id_arg $ full_arg))

let () =
  let doc = "ReFlex (ASPLOS'17) reproduction: run the paper's experiments" in
  let info = Cmd.info "reflex_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
